"""PUL optimization: reduction, conflict and aggregation rules
(Section 5; Examples 5.1, 5.2, 5.3).
"""

import pytest

from repro.optimizer.aggregation import aggregate_puls
from repro.optimizer.conflicts import (
    Conflict,
    deletes_win,
    detect_conflicts,
    integrate_puls,
)
from repro.optimizer.ops import Del, Ins, pul_to_operations
from repro.optimizer.rules import reduce_operations, reduce_statements
from repro.updates.language import DeleteUpdate, InsertUpdate
from repro.updates.pul import compute_pul
from repro.xmldom.parser import parse_document
from repro.xmldom.serializer import serialize_fragment


@pytest.fixture
def fig17_document():
    """The Figure 17 document (trimmed to the nodes the examples use)."""
    return parse_document(
        "<a><c><b>"
        "<d><b/></d><d><b/></d><d><b><e/></b></d>"
        "</b></c><f><c><b/></c></f><c><b/></c></a>"
    )


def node_id(doc, path, index=0):
    from repro.pattern.xpath_parser import evaluate_path

    return evaluate_path(path, doc)[index].id


class TestReductionRules:
    def test_o1_insert_then_delete_same_target(self, fig17_document):
        target = node_id(fig17_document, "//d/b")
        ops = [Ins(target, "<b><d/></b>"), Del(target)]
        reduced = reduce_operations(ops)
        assert len(reduced) == 1
        assert isinstance(reduced[0], Del)

    def test_o1_delete_then_delete(self, fig17_document):
        target = node_id(fig17_document, "//d/b")
        reduced = reduce_operations([Del(target), Del(target)])
        assert len(reduced) == 1

    def test_o3_ancestor_delete_voids_descendant_op(self, fig17_document):
        child = node_id(fig17_document, "//d/b")
        ancestor = node_id(fig17_document, "//c/b")
        ops = [Ins(child, "<b/>"), Del(ancestor)]
        reduced = reduce_operations(ops)
        assert len(reduced) == 1
        assert isinstance(reduced[0], Del) and reduced[0].target == ancestor

    def test_i5_merges_same_target_inserts(self, fig17_document):
        target = node_id(fig17_document, "//d", 2)
        ops = [Ins(target, "<b/>"), Ins(target, "<d><b/></d>")]
        reduced = reduce_operations(ops)
        assert len(reduced) == 1
        assert [t.label for t in reduced[0].forest] == ["b", "d"]

    def test_example_5_1_full_reduction(self, fig17_document):
        doc = fig17_document
        # Use real nodes: first d's b, second d, third d.
        b_under_d1 = node_id(doc, "//d/b", 0)
        d2 = node_id(doc, "//d", 1)
        d3 = node_id(doc, "//d", 2)
        ops = [
            Ins(b_under_d1, "<b><d/></b>"),  # op1: voided by op2 (O1)
            Del(b_under_d1),                  # op2
            Ins(d2.child("b", (1,)), "<b/>"),  # op3: voided by op4 (O3)
            Del(d2),                          # op4
            Ins(d3, "<b/>"),                  # op5 + op6 merge (I5)
            Ins(d3, "<d><b/></d>"),
        ]
        reduced = reduce_operations(ops)
        kinds = [op.kind for op in reduced]
        assert kinds == ["del", "del", "ins"]
        assert [t.label for t in reduced[-1].forest] == ["b", "d"]

    def test_unrelated_ops_kept_in_order(self, fig17_document):
        a = node_id(fig17_document, "//d", 0)
        b = node_id(fig17_document, "//d", 1)
        ops = [Ins(a, "<x/>"), Ins(b, "<y/>")]
        assert reduce_operations(ops) == ops


class TestConflictRules:
    def test_example_5_2_conflicts(self, fig17_document):
        doc = fig17_document
        d1 = node_id(doc, "//d", 0)
        d2 = node_id(doc, "//d", 1)
        d3_b = node_id(doc, "//d", 2).child("b", (1,))
        pul1 = [Ins(d1, "<d><b/></d>"), Del(d2), Del(node_id(doc, "//d", 2))]
        pul2 = [Ins(d1, "<b/>"), Ins(d2, "<b/>"), Ins(d3_b, "<b/>")]
        conflicts = detect_conflicts(pul1, pul2)
        kinds = sorted(c.kind for c in conflicts)
        assert kinds == ["IO", "LO", "NLO"]

    def test_io_is_symmetric(self, fig17_document):
        target = node_id(fig17_document, "//d", 0)
        (conflict,) = detect_conflicts([Ins(target, "<x/>")], [Ins(target, "<y/>")])
        assert conflict.kind == "IO" and conflict.symmetric

    def test_default_policy_fails(self, fig17_document):
        target = node_id(fig17_document, "//d", 0)
        with pytest.raises(ValueError):
            integrate_puls([Del(target)], [Ins(target, "<x/>")])

    def test_deletes_win_policy(self, fig17_document):
        target = node_id(fig17_document, "//d", 0)
        integrated, conflicts = integrate_puls(
            [Del(target)], [Ins(target, "<x/>")], resolution=deletes_win
        )
        assert len(conflicts) == 1
        assert [op.kind for op in integrated] == ["del"]

    def test_no_conflicts_concatenates(self, fig17_document):
        a = node_id(fig17_document, "//d", 0)
        b = node_id(fig17_document, "//d", 1)
        integrated, conflicts = integrate_puls([Ins(a, "<x/>")], [Ins(b, "<y/>")])
        assert conflicts == []
        assert len(integrated) == 2


class TestAggregationRules:
    def test_a1_merges_same_target_inserts_across_puls(self, fig17_document):
        target = node_id(fig17_document, "//d", 0)
        first, second = aggregate_puls(
            [Ins(target, "<c><b/></c>")], [Ins(target, "<b/>")]
        )
        assert second == []
        assert [t.label for t in first[0].forest] == ["c", "b"]

    def test_d6_folds_op_into_pending_fragment(self, fig17_document):
        # Δ1 inserts <d><b/></d> under d3; Δ2 inserts <b/> under the
        # *future* d node of that fragment (Example 5.3's op31/op32).
        d3 = node_id(fig17_document, "//d", 2)
        future_d = d3.child("d", (99,))
        first, second = aggregate_puls(
            [Ins(d3, "<d><b/></d>")], [Ins(future_d, "<b/>")]
        )
        assert second == []
        fragment = first[0].forest[0]
        assert serialize_fragment(fragment) == "<d><b/><b/></d>"

    def test_d6_delete_inside_fragment(self, fig17_document):
        d3 = node_id(fig17_document, "//d", 2)
        future_b = d3.child("d", (99,)).child("b", (1,))
        first, second = aggregate_puls(
            [Ins(d3, "<d><b/></d>")], [Del(future_b)]
        )
        assert second == []
        assert serialize_fragment(first[0].forest[0]) == "<d/>"

    def test_unrelated_ops_stay_in_second_pul(self, fig17_document):
        d1 = node_id(fig17_document, "//d", 0)
        d2 = node_id(fig17_document, "//d", 1)
        first, second = aggregate_puls([Ins(d1, "<x/>")], [Ins(d2, "<y/>")])
        assert len(first) == 1 and len(second) == 1


class TestStatementReduction:
    def test_coalescing_preserves_semantics(self, people_document):
        statements = [
            InsertUpdate("/site/people/person", "<tag/>"),
            DeleteUpdate("/site/people/person[@id = 'person1']"),
        ]
        reduced = reduce_statements(people_document, statements)
        # person1's insert is voided by its delete (O3); the others
        # coalesce into one multi-target insert plus one delete.
        kinds = [statement.kind for statement in reduced]
        assert kinds == ["insert", "delete"]
        assert len(reduced[0].target_ids) == 2

    def test_pul_to_operations_copies_forests(self, people_document):
        update = InsertUpdate("/site/people/person", "<tag/>")
        pul = compute_pul(people_document, update)
        ops = pul_to_operations(pul)
        assert len(ops) == 3
        assert ops[0].forest[0] is not update.forest[0]
