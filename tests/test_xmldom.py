"""Document model: trees, canonical relations, updates (Section 2.1)."""

import pytest

from repro.xmldom.model import (
    AttributeNode,
    ElementNode,
    TextNode,
    build_document,
    deep_copy,
)
from repro.xmldom.parser import parse_document, parse_fragment


class TestConstruction:
    def test_ids_assigned_in_document_order(self, fig2_document):
        ids = [str(n.id) for n in fig2_document.root.self_and_descendants()
               if n.kind == "element"]
        assert ids == ["a1", "a1.c1", "a1.c1.b1", "a1.f2", "a1.f2.b1"]

    def test_label_index_is_document_ordered(self, fig2_document):
        bs = fig2_document.nodes_with_label("b")
        assert [str(n.id) for n in bs] == ["a1.c1.b1", "a1.f2.b1"]

    def test_node_by_id(self, fig2_document):
        b = fig2_document.nodes_with_label("b")[0]
        assert fig2_document.node_by_id(b.id) is b

    def test_attribute_modeled_as_child(self):
        doc = parse_document('<a id="7"><b/></a>')
        attr = doc.nodes_with_label("@id")[0]
        assert attr.kind == "attribute"
        assert attr.val == "7"
        assert attr.parent is doc.root
        assert doc.root.attribute("id") is attr

    def test_append_rejects_attached_node(self):
        parent = ElementNode("a")
        child = ElementNode("b")
        parent.append(child)
        with pytest.raises(ValueError):
            ElementNode("c").append(child)


class TestStoredAttributes:
    def test_val_concatenates_text_descendants(self):
        doc = parse_document("<a>x<b>y</b>z</a>")
        assert doc.root.val == "xyz"

    def test_text_node_val(self):
        doc = parse_document("<a>hello</a>")
        text = doc.nodes_with_label("#text")[0]
        assert text.val == "hello"

    def test_cont_is_serialized_subtree(self, fig2_document):
        c = fig2_document.nodes_with_label("c")[0]
        assert c.cont == "<c><b>hi</b></c>"

    def test_detached_node_has_no_id(self):
        node = ElementNode("a")
        with pytest.raises(ValueError):
            _ = node.id


class TestUpdates:
    def test_insert_assigns_fresh_ids(self, fig2_document):
        target = fig2_document.nodes_with_label("c")[0]
        tree = parse_fragment("<b><d/></b>")[0]
        new_root = fig2_document.insert_subtree(target, tree)
        assert new_root.id.parent() == target.id
        d = fig2_document.nodes_with_label("d")[0]
        assert new_root.id.is_parent_of(d.id)

    def test_insert_is_a_copy(self, fig2_document):
        target = fig2_document.nodes_with_label("c")[0]
        tree = parse_fragment("<x/>")[0]
        new_root = fig2_document.insert_subtree(target, tree)
        assert new_root is not tree
        assert tree.parent is None

    def test_insert_after_last_child_keeps_order(self, fig2_document):
        target = fig2_document.root
        fig2_document.insert_subtree(target, parse_fragment("<z/>")[0])
        labels = [child.label for child in target.children]
        assert labels == ["c", "f", "z"]
        ids = [child.id for child in target.children]
        assert ids == sorted(ids)

    def test_insert_between_siblings_no_relabel(self, fig2_document):
        target = fig2_document.root
        old_ids = [child.id for child in target.children]
        fig2_document.insert_subtree(target, parse_fragment("<m/>")[0], position=1)
        assert [target.children[0].id, target.children[2].id] == old_ids
        assert target.children[0].id < target.children[1].id < target.children[2].id

    def test_insert_updates_index(self, fig2_document):
        target = fig2_document.nodes_with_label("f")[0]
        fig2_document.insert_subtree(target, parse_fragment("<b/>")[0])
        assert len(fig2_document.nodes_with_label("b")) == 3

    def test_delete_removes_subtree_from_index(self, fig2_document):
        f = fig2_document.nodes_with_label("f")[0]
        removed = fig2_document.delete_subtree(f)
        assert {n.label for n in removed} == {"f", "b", "#text"}
        assert len(fig2_document.nodes_with_label("b")) == 1
        assert fig2_document.node_by_id(f.id) is None

    def test_delete_root_rejected(self, fig2_document):
        with pytest.raises(ValueError):
            fig2_document.delete_subtree(fig2_document.root)

    def test_removed_nodes_keep_ids_and_content(self, fig2_document):
        f = fig2_document.nodes_with_label("f")[0]
        old_id = f.id
        fig2_document.delete_subtree(f)
        assert f.id == old_id
        assert f.cont == "<f><b>yo</b></f>"

    def test_deleted_ids_never_reissued(self, fig2_document):
        # Regression (found by hypothesis): deleting a parent's only
        # child and inserting a same-labeled node must NOT recycle the
        # dead ID -- stale references would silently re-bind.
        c = fig2_document.nodes_with_label("c")[0]
        old_b = c.children[0]
        old_id = old_b.id
        fig2_document.delete_subtree(old_b)
        new_b = fig2_document.insert_subtree(c, parse_fragment("<b/>")[0])
        assert new_b.id != old_id
        assert fig2_document.node_by_id(old_id) is None

    def test_retired_ids_respected_between_siblings(self, fig2_document):
        root = fig2_document.root
        middle = fig2_document.insert_subtree(root, parse_fragment("<m/>")[0], position=1)
        middle_id = middle.id
        fig2_document.delete_subtree(middle)
        replacement = fig2_document.insert_subtree(
            root, parse_fragment("<m/>")[0], position=1
        )
        assert replacement.id != middle_id
        ids = [child.id for child in root.children]
        assert ids == sorted(ids)

    def test_snapshot_label_immune_to_updates(self, fig2_document):
        snapshot = fig2_document.snapshot_label("b")
        fig2_document.delete_subtree(fig2_document.nodes_with_label("f")[0])
        assert len(snapshot) == 2


class TestDeepCopy:
    def test_structure_copied(self):
        original = parse_fragment('<a id="1"><b>t</b></a>')[0]
        clone = deep_copy(original)
        assert clone is not original
        assert clone.label == "a"
        assert isinstance(clone.children[0], AttributeNode)
        assert isinstance(clone.children[1].children[0], TextNode)

    def test_copy_is_detached(self):
        doc = parse_document("<a><b/></a>")
        clone = deep_copy(doc.root)
        assert clone.parent is None
        assert clone.dewey is None
