"""Fixture: idiomatic engine code that must produce zero findings."""

import zlib
from typing import Dict, List

from repro.updates.pul import PendingUpdateList  # downward import


def shard_of(label: str, shard_count: int) -> int:
    return zlib.crc32(label.encode("utf-8")) % shard_count


def ordered_labels(labels) -> List[str]:
    return sorted(set(labels))


def dedup_keep_order(labels) -> List[str]:
    # The insertion-ordered-dict set idiom the det rules point at.
    seen: Dict[str, None] = {}
    for label in labels:
        seen[label] = None
    return list(seen)


def touches(labels, wanted) -> bool:
    touched = set(labels)
    return any(label in touched for label in wanted) or bool(
        PendingUpdateList()
    )
