"""Fixture: address- and hash-based ordering (det-id-order /
det-hash-order).

det-id-order: the two sort keys plus the comparison (one finding per
compared side).  det-hash-order: the modulo bucket and the sort key.
"""

import zlib


def by_address(nodes):
    nodes.sort(key=id)  # det-id-order: id as sort key
    worst = sorted(nodes, key=lambda node: id(node))  # det-id-order
    return worst


def tie_break(left, right):
    return left if id(left) < id(right) else right  # det-id-order x2


def bucket(label, shard_count):
    return hash(label) % shard_count  # det-hash-order: seed-salted


def by_hash(labels):
    return sorted(labels, key=lambda label: hash(label))  # det-hash-order


def bucket_ok(label, shard_count):
    # crc32 is the sanctioned stable label hash (the shard planner's).
    return zlib.crc32(label.encode("utf-8")) % shard_count
