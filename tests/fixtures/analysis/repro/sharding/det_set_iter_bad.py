"""Fixture: ordered sinks fed from set iteration (must trip det-set-iter).

Exactly four findings: the for-loop, list(), .join() and the list
comprehension.  The ``fine`` function exercises the allowances.
"""


def collect(labels):
    touched = set(labels)
    ordered = []
    for label in touched:  # finding 1: for-loop over a set
        ordered.append(label)
    listed = list(touched)  # finding 2: list() over a set
    joined = ",".join(touched)  # finding 3: .join() over a set
    comp = [label.upper() for label in touched]  # finding 4: list comp
    return ordered, listed, joined, comp


def fine(labels):
    touched = set(labels)
    if "site" in touched:  # membership is order-free
        return sorted(touched)  # sorted() is the sanctioned consumer
    biggest = max(len(label) for label in touched)  # neutral genexp
    return len(touched) + biggest
