"""Fixture: a naive rebalancer with every habit the real one avoids.

Migration decisions must replay from recorded timings alone, so the
rule families all apply: det-wallclock (self-timed observation),
det-random (random tie-break), det-set-iter (planning over a set of
view names), det-hash-order (hash-picked target worker).
"""

import random
import time


def observe_cost(costs, name, started):
    costs[name] = time.time() - started  # det-wallclock: self-timed


def pick_target(name, worker_count):
    return hash(name) % worker_count  # det-hash-order: seed-salted


def plan_moves(view_names, loads):
    overloaded = set(view_names)
    moves = []
    for name in overloaded:  # det-set-iter: plan order varies
        source = loads.index(max(loads))
        target = random.randrange(len(loads))  # det-random: unseeded
        moves.append((name, source, target))
    return moves
