"""Fixture: worker-side writes to module globals (fork-worker-global-write).

Three findings in ``_worker`` (the ``global`` declaration, the dict
append-style mutation, the subscript write); ``publish`` is the
sanctioned parent-side pattern and must stay clean.
"""

from multiprocessing import Process

_ROUND_STATE = {"round": None}
_SEEN = []


def _worker(index):
    global _ROUND_STATE  # finding: global declared in a worker
    _SEEN.append(index)  # finding: mutating a module-level list
    _ROUND_STATE["round"] = index  # finding: subscript write
    return index


def _reader(index):
    # Reading fork-published state is the contract; no findings here.
    return _ROUND_STATE["round"], len(_SEEN), index


def publish(round_state):
    # Parent-side mutation before forking is fine: not a worker body.
    _ROUND_STATE["round"] = round_state


def launch():
    return [
        Process(target=_worker, args=(0,)),
        Process(target=_reader, args=(1,)),
    ]
