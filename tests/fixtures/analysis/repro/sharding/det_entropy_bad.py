"""Fixture: entropy and wall-clock reads (det-random / det-wallclock).

det-random must fire three times (the from-import, the module-level
call, the unseeded constructor); det-wallclock twice.
"""

import random
import time
from random import choice  # det-random: from-import of module state


def jitter(values):
    noise = random.random()  # det-random: unseeded module-level call
    unseeded = random.Random()  # det-random: no seed
    seeded = random.Random(42)  # allowed: explicit seed
    return noise, unseeded.random(), seeded.choice(values), choice(values)


def stamp():
    started = time.time()  # det-wallclock
    time.sleep(0)
    return time.time() - started  # det-wallclock


def duration_ok():
    started = time.perf_counter()  # allowed: monotonic duration clock
    return time.perf_counter() - started
