"""Fixture: work units writing through self (unit-impure-write).

Three findings in ``LeakyUnit.execute``: the attribute assignment, the
mutating method call and the subscript write.  ``PureUnit`` shows the
contract (build locally, return the fragment).
"""


class ShardWorkUnit:  # stand-in mirroring repro.sharding.units
    pass


class LeakyUnit(ShardWorkUnit):
    def __init__(self, engine, registered):
        self.engine = engine
        self.registered = registered

    def execute(self):
        self.engine.applied = True  # finding: assign through self
        self.registered.rows.clear()  # finding: mutating captured state
        self.engine.cache["last"] = self  # finding: subscript write
        return ()


class PureUnit(ShardWorkUnit):
    def __init__(self, rows):
        self.rows = tuple(rows)

    def execute(self):
        fragment = [row for row in self.rows if row is not None]
        return tuple(fragment)
