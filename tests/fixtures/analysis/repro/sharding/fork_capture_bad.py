"""Fixture: fork-hostile resources on instances (fork-unsafe-capture).

Three findings: the lock, the open file handle and the generator.
"""

import threading


class ShardFeeder:
    def __init__(self, paths):
        self._lock = threading.Lock()  # finding: lock crosses fork
        self._log = open("feeder.log", "w")  # finding: shared fd
        self._stream = (path for path in paths)  # finding: generator
        self._paths = list(paths)  # fine: plain data
