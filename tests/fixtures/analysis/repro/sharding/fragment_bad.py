"""Fixture: fragment fields off the allowlist (fragment-unpicklable-field).

Three findings: the Node-typed class annotation, the view-typed
__init__ annotation and the unverifiable call-valued field.
"""

from typing import Dict, List, Optional, Tuple


class FakeNode:
    pass


def make_view():
    return object()


class EmbeddingFragment:
    anchor: FakeNode  # finding: raw node reference in a fragment

    def __init__(self, rows, view_ref):
        self.rows: List[Tuple[str, ...]] = list(rows)  # fine
        self.view: Optional[FakeNode] = view_ref  # finding: FakeNode
        self.extent = make_view()  # finding: unverifiable value
        self.sizes: Dict[str, int] = {}  # fine
        self.label = "anchor"  # fine: literal
