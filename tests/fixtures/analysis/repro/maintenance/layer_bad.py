"""Fixture: upward imports against the layer DAG (layer-upward-import).

Three findings: the module-scope from-import, the deferred import
inside the function (deferral doesn't launder the edge) and the
``from repro import <subpackage>`` spelling.  The downward import is
fine.
"""

from repro.sharding import planner  # finding: maintenance -> sharding
from repro.updates.pul import PendingUpdateList  # fine: downward


def lazy_edge():
    import repro.sharding.units  # finding: deferred upward import

    return repro.sharding.units


def aliased_edge():
    from repro import sharding  # finding: subpackage via alias list

    return sharding, planner, PendingUpdateList
