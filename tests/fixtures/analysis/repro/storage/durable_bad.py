"""Fixture: durable resources captured silently (fork-unsafe-capture).

Two findings: the sqlite connection and the WAL file handle.  The class
defines no ``__getstate__``/``__reduce__``, so nothing stops either
resource from crossing the fork/pickle boundary silently.
"""

import sqlite3


class LeakyBackend:
    def __init__(self, path):
        self._conn = sqlite3.connect(path)  # finding: sqlite connection
        self._wal = open(path + ".batchlog", "ab")  # finding: shared fd
        self._path = path  # fine: plain data
