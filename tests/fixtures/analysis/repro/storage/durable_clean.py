"""Fixture: durable resources with an explicit pickling boundary.

Zero findings: the class holds the same sqlite connection and WAL
handle as the bad fixture, but declares its boundary behaviour with a
``__getstate__`` that refuses to pickle -- the resource can never cross
the fork/pickle boundary silently, which is all the rule polices.
"""

import sqlite3


class GuardedBackend:
    def __init__(self, path):
        self._conn = sqlite3.connect(path)  # fine: boundary declared
        self._wal = open(path + ".batchlog", "ab")  # fine: boundary declared
        self._path = path

    def __getstate__(self):
        raise TypeError("GuardedBackend must not cross the fork/pickle boundary")
