"""Fixture: wall-clock reads inside repro.obs, outside export.py."""

import datetime
import time


def stamp_span(span):
    span.start = time.time()
    span.captured = datetime.datetime.now()
    return span


def good_duration():
    started = time.perf_counter()
    return time.perf_counter() - started
