"""Fixture: ``obs/export.py`` alone may stamp wall-clock capture times."""

import datetime


def captured_at():
    return datetime.datetime.now(datetime.timezone.utc).isoformat()
