"""The batch pipeline's grand invariant, property-based:

``BatchEngine.apply(batch)`` must leave the document *and* every
maintained view (extent, derivation counts, snowcap lattice)
byte-identical to sequential per-statement application -- for random
documents/views/statement streams, for XMark streams drawn from the
Appendix-A update set, and for coalescing-cancellation shapes (inserts
merged into one statement, insert-then-delete round-trips that cancel
out of both Δ sets).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.maintenance.engine import BatchEngine, MaintenanceEngine
from repro.updates.language import (
    DeleteUpdate,
    InsertUpdate,
    ResolvedDeleteUpdate,
    ResolvedInsertUpdate,
    UpdateBatch,
    parse_update,
)
from repro.updates.pul import compute_pul
from repro.workloads.queries import view_pattern
from repro.workloads.updates import delete_variant, insert_update, statement_stream
from repro.workloads.xmark import generate_document
from repro.xmldom.parser import parse_document
from repro.xmldom.serializer import serialize_fragment
from tests.test_property_maintenance import (
    _random_document,
    _random_update,
    _random_view,
)


def _assert_equivalent(sequential_views, batch_views, sequential_doc, batch_doc):
    assert serialize_fragment(sequential_doc.root) == serialize_fragment(batch_doc.root)
    for name in sequential_views:
        sequential_view = sequential_views[name]
        batch_view = batch_views[name]
        assert sequential_view.view.content() == batch_view.view.content(), name
        assert batch_view.view.equals_fresh_evaluation(batch_doc), name
        for subset in sequential_view.lattice.materialized_sets():
            stored = sequential_view.lattice.relation_for(subset)
            batched = batch_view.lattice.relation_for(subset)
            assert sorted(
                tuple(cell.id for cell in row) for row in stored.rows
            ) == sorted(
                tuple(cell.id for cell in row) for row in batched.rows
            ), (name, sorted(subset))


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_batch_equals_sequential_random_streams(seed):
    rng = random.Random(seed)
    text = serialize_fragment(_random_document(rng).root)
    view = _random_view(rng)
    strategy = rng.choice(("snowcaps", "leaves"))
    statements = [_random_update(rng) for _ in range(rng.randint(1, 5))]

    sequential_doc = parse_document(text)
    sequential = MaintenanceEngine(sequential_doc)
    sequential_view = sequential.register_view(view, "v", strategy=strategy)
    applied = []
    for statement in statements:
        targets = statement.target.evaluate(sequential_doc)
        if statement.kind == "insert" and any(
            not hasattr(target, "children") for target in targets
        ):
            continue  # skip inserts into attribute/text targets
        applied.append(statement)
        sequential.apply_update(statement)

    batch_doc = parse_document(text)
    batched = BatchEngine(batch_doc)
    batch_view = batched.register_view(view, "v", strategy=strategy)
    batched.apply(UpdateBatch(applied))
    _assert_equivalent(
        {"v": sequential_view}, {"v": batch_view}, sequential_doc, batch_doc
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_batch_equals_sequential_xmark_streams(seed):
    """Random XMark statement streams, including cancellation pairs."""
    rng = random.Random(seed)
    names = ("X1_L", "X2_L", "X3_A", "A6_A", "B3_LB", "B7_LB")
    statements = []
    for _ in range(rng.randint(3, 7)):
        name = rng.choice(names)
        statements.append(
            insert_update(name) if rng.random() < 0.7 else delete_variant(name)
        )
    if rng.random() < 0.6:
        # Coalescing-cancellation: insert a uniquely labeled subtree,
        # then delete it within the same batch.
        position = rng.randrange(len(statements) + 1)
        statements.insert(
            position,
            InsertUpdate(
                "/site/people/person", "<zzz>tmp<zzz>x</zzz></zzz>", name="tmp_ins"
            ),
        )
        statements.insert(
            rng.randrange(position + 1, len(statements) + 1),
            DeleteUpdate("//zzz", name="tmp_del"),
        )
    views = ("Q1", "Q3")

    sequential_doc = generate_document(scale=1)
    sequential = MaintenanceEngine(sequential_doc)
    sequential_views = {
        name: sequential.register_view(view_pattern(name), name) for name in views
    }
    for statement in statements:
        sequential.apply_update(statement)

    batch_doc = generate_document(scale=1)
    batched = BatchEngine(batch_doc)
    batch_views = {
        name: batched.register_view(view_pattern(name), name) for name in views
    }
    batched.apply(UpdateBatch(statements))
    _assert_equivalent(sequential_views, batch_views, sequential_doc, batch_doc)


def test_batch_equals_sequential_resolved_stream():
    """The single-target write-stream shape the async queue produces."""
    stream = statement_stream(
        generate_document(scale=1), 24, seed=3, insert_ratio=0.7
    )
    sequential_doc = generate_document(scale=1)
    sequential = MaintenanceEngine(sequential_doc)
    sequential_view = sequential.register_view(view_pattern("Q1"), "Q1")
    for statement in stream:
        sequential.apply_update(statement)
    batch_doc = generate_document(scale=1)
    batched = BatchEngine(batch_doc)
    batch_view = batched.register_view(view_pattern("Q1"), "Q1")
    batched.apply(UpdateBatch(stream))
    _assert_equivalent(
        {"Q1": sequential_view}, {"Q1": batch_view}, sequential_doc, batch_doc
    )


class TestCoalescing:
    def test_adjacent_resolved_inserts_merge(self):
        document = generate_document(scale=1)
        base = insert_update("X1_L")
        target_id = compute_pul(document, base).inserts()[0].target.id
        statements = [
            ResolvedInsertUpdate([target_id], base.forest, name="a"),
            ResolvedInsertUpdate([target_id], base.forest, name="b"),
            ResolvedInsertUpdate([target_id], base.forest, name="c"),
        ]
        batch = UpdateBatch(statements).coalesced()
        assert len(batch) == 1
        assert "a" in batch.statements[0].name and "c" in batch.statements[0].name

    def test_path_inserts_merge_only_when_safe(self):
        safe = UpdateBatch(
            [insert_update("X1_L"), insert_update("X1_L")]
        ).coalesced()
        assert len(safe) == 1  # <name> forest cannot extend /site/people/person
        # Inserting <person> under persons could create new targets for
        # the same path, so these must NOT merge.
        risky = UpdateBatch(
            [
                InsertUpdate("/site/people/person", "<person>x</person>"),
                InsertUpdate("/site/people/person", "<person>y</person>"),
            ]
        ).coalesced()
        assert len(risky) == 2
        # Predicate labels count too: inserting <phone> flips the filter.
        predicate = UpdateBatch(
            [
                InsertUpdate("/site/people/person[phone]", "<phone>1</phone>"),
                InsertUpdate("/site/people/person[phone]", "<phone>2</phone>"),
            ]
        ).coalesced()
        assert len(predicate) == 2

    def test_coalesced_batch_equals_sequential(self):
        statements = [insert_update("X1_L"), insert_update("X1_L"), insert_update("X2_L")]
        sequential_doc = generate_document(scale=1)
        sequential = MaintenanceEngine(sequential_doc)
        sequential_view = sequential.register_view(view_pattern("Q1"), "Q1")
        for statement in statements:
            sequential.apply_update(statement)
        batch_doc = generate_document(scale=1)
        batched = BatchEngine(batch_doc)
        batch_view = batched.register_view(view_pattern("Q1"), "Q1")
        report = batched.apply(UpdateBatch(statements))
        assert report.statements_submitted == 3
        assert report.statements_applied == 2  # X1_L pair merged
        _assert_equivalent(
            {"Q1": sequential_view}, {"Q1": batch_view}, sequential_doc, batch_doc
        )

    def test_insert_then_delete_cancels(self):
        document = generate_document(scale=1)
        engine = BatchEngine(document)
        registered = engine.register_view(view_pattern("Q1"), "Q1")
        before = registered.view.content()
        report = engine.apply(
            UpdateBatch(
                [
                    InsertUpdate("/site/people/person", "<zzz><zzz>x</zzz></zzz>"),
                    DeleteUpdate("//zzz"),
                ]
            )
        )
        assert report.net_inserted == 0
        assert report.net_removed == 0
        assert report.cancelled > 0
        assert registered.view.content() == before
        assert registered.view.equals_fresh_evaluation(document)


class TestReductionRules:
    """O1/O3/I5 folded into UpdateBatch (Figure 14 at batch level)."""

    def _target(self, document, path):
        statement = parse_update("delete %s" % path)
        return statement.target.evaluate(document)[0].id

    def test_o1_insert_then_delete_same_node_drops_insert(self):
        document = generate_document(scale=1)
        person = self._target(document, "/site/people/person")
        batch = UpdateBatch(
            [
                ResolvedInsertUpdate([person], insert_update("X1_L").forest, name="ins"),
                ResolvedDeleteUpdate([person], name="del"),
            ]
        )
        reduced = batch.reduced()
        assert [s.name for s in reduced.statements] == ["del"]

    def test_o3_delete_of_ancestor_voids_descendant_inserts_only(self):
        document = generate_document(scale=1)
        person = self._target(document, "/site/people/person")
        people = self._target(document, "/site/people")
        batch = UpdateBatch(
            [
                ResolvedInsertUpdate([person], insert_update("X1_L").forest, name="ins"),
                ResolvedDeleteUpdate([person], name="early_del"),
                ResolvedDeleteUpdate([people], name="late_del"),
            ]
        )
        reduced = batch.reduced()
        # The insert under the doomed subtree is voided; the earlier
        # deletion is NOT (removing it would shift ordinal assignment
        # of any intervening insert into a surviving parent).
        assert [s.name for s in reduced.statements] == ["early_del", "late_del"]

    def test_duplicate_delete_is_not_voided_ordinal_regression(self):
        # Regression: [delete X, insert into P, delete X] must apply the
        # first delete -- voiding it leaves X in P's child list when the
        # insert picks its ordinal, diverging from sequential Dewey
        # assignment.
        document = generate_document(scale=1)
        person = parse_update("delete /site/people/person").target.evaluate(document)[0]
        people = person.parent
        statements = [
            ResolvedDeleteUpdate([person.id], name="d0"),
            ResolvedInsertUpdate(
                [people.id], insert_update("X1_L").forest, name="ins"
            ),
            ResolvedDeleteUpdate([person.id], name="d1"),
        ]
        reduced = UpdateBatch(statements).reduced()
        assert [s.name for s in reduced.statements] == ["d0", "ins", "d1"]
        sequential_doc = generate_document(scale=1)
        sequential = MaintenanceEngine(sequential_doc)
        sequential_view = sequential.register_view(view_pattern("Q1"), "Q1")
        for statement in statements:
            sequential.apply_update(statement)
        batch_doc = generate_document(scale=1)
        batched = BatchEngine(batch_doc)
        batch_view = batched.register_view(view_pattern("Q1"), "Q1")
        batched.apply(UpdateBatch(statements))
        _assert_equivalent(
            {"Q1": sequential_view}, {"Q1": batch_view}, sequential_doc, batch_doc
        )

    def test_partial_voiding_keeps_surviving_targets(self):
        document = generate_document(scale=1)
        persons = parse_update("delete /site/people/person").target.evaluate(document)
        doomed, survivor = persons[0].id, persons[1].id
        batch = UpdateBatch(
            [
                ResolvedInsertUpdate(
                    [doomed, survivor], insert_update("X1_L").forest, name="ins"
                ),
                ResolvedDeleteUpdate([doomed], name="del"),
            ]
        )
        reduced = batch.reduced()
        assert [s.name for s in reduced.statements] == ["ins", "del"]
        assert reduced.statements[0].target_ids == [survivor]

    def test_unresolved_statement_blocks_reduction_across_it(self):
        document = generate_document(scale=1)
        person = self._target(document, "/site/people/person")
        batch = UpdateBatch(
            [
                ResolvedInsertUpdate([person], insert_update("X1_L").forest, name="ins"),
                insert_update("X2_L"),  # path-targeted: resolution barrier
                ResolvedDeleteUpdate([person], name="del"),
            ]
        )
        reduced = batch.reduced()
        assert [s.name for s in reduced.statements] == ["ins", "X2_L", "del"]

    def test_i5_runs_through_coalesced_after_reduction(self):
        document = generate_document(scale=1)
        persons = parse_update("delete /site/people/person").target.evaluate(document)
        doomed, kept = persons[0].id, persons[1].id
        forest = insert_update("X1_L").forest
        batch = UpdateBatch(
            [
                ResolvedInsertUpdate([kept], forest, name="a"),
                ResolvedInsertUpdate([doomed], forest, name="void_me"),
                ResolvedInsertUpdate([kept], forest, name="b"),
                ResolvedDeleteUpdate([doomed], name="del"),
            ]
        )
        coalesced = batch.coalesced()
        # Voiding the middle insert (O1) makes a/b adjacent; I5 merges them.
        assert [s.name for s in coalesced.statements] == ["a+b", "del"]

    def test_reduced_batch_extents_match_sequential(self):
        document = generate_document(scale=1)
        persons = parse_update("delete /site/people/person").target.evaluate(document)
        statements = [
            ResolvedInsertUpdate([persons[0].id], insert_update("X1_L").forest, name="i0"),
            ResolvedInsertUpdate([persons[1].id], insert_update("X1_L").forest, name="i1"),
            ResolvedDeleteUpdate([persons[0].id], name="d0"),
        ]
        sequential_doc = generate_document(scale=1)
        sequential = MaintenanceEngine(sequential_doc)
        sequential_view = sequential.register_view(view_pattern("Q1"), "Q1")
        for statement in statements:
            sequential.apply_update(statement)
        batch_doc = generate_document(scale=1)
        batched = BatchEngine(batch_doc)
        batch_view = batched.register_view(view_pattern("Q1"), "Q1")
        report = batched.apply(UpdateBatch(statements))
        assert report.statements_applied == 2  # i0 voided by d0
        _assert_equivalent(
            {"Q1": sequential_view}, {"Q1": batch_view}, sequential_doc, batch_doc
        )


class TestFallbackReasons:
    """σ flips and dirty subtrees repair in place; fallbacks are scoped."""

    @staticmethod
    def _flip_document():
        return parse_document(
            "<site><open_auctions><open_auction><bidder>"
            "<increase>4.50</increase></bidder></open_auction>"
            "</open_auctions></site>"
        )

    def test_predicate_flip_repairs_in_place(self):
        document = self._flip_document()
        engine = BatchEngine(document)
        registered = engine.register_view(view_pattern("Q3"), "Q3")
        report = engine.apply(
            UpdateBatch([parse_update("for $i in //increase insert flip", name="flip")])
        )
        assert report.fallbacks == {}
        assert not report.report_for("Q3").predicate_fallback
        repairs = report.repairs["Q3"]
        assert repairs["sigma_flips"] == 1
        assert repairs["evicted"] == 1 and repairs.get("admitted", 0) == 0
        assert registered.view.equals_fresh_evaluation(document)

    def test_predicate_flip_fallback_when_repair_disabled(self):
        document = self._flip_document()
        engine = BatchEngine(document, sigma_repair=False)
        registered = engine.register_view(view_pattern("Q3"), "Q3")
        report = engine.apply(
            UpdateBatch([parse_update("for $i in //increase insert flip", name="flip")])
        )
        assert report.fallbacks == {
            "Q3": {"reason": "predicate_flip", "candidates": 1}
        }
        assert report.report_for("Q3").predicate_fallback
        assert report.repairs == {}
        assert registered.view.equals_fresh_evaluation(document)

    @staticmethod
    def _dirty_batch(document):
        # Q1 stores name.val, so drift matters only on removed *name*
        # nodes: insert under an existing name, then delete its whole
        # ancestor chain via a *path* (a resolved delete would just
        # void the insert per O3) -- the removed name's val/cont
        # drifted before its removal.
        name = parse_update("delete /site/people/person/name").target.evaluate(
            document
        )[0]
        return UpdateBatch(
            [
                ResolvedInsertUpdate(
                    [name.id], insert_update("X1_L").forest, name="ins"
                ),
                parse_update("delete /site/people", name="del"),
            ]
        )

    def test_dirty_removed_subtree_restores_snapshots(self):
        document = generate_document(scale=1)
        engine = BatchEngine(document)
        registered = engine.register_view(view_pattern("Q1"), "Q1")
        report = engine.apply(self._dirty_batch(document))
        assert report.fallbacks == {}
        assert report.dirty_restored >= 1
        assert registered.view.equals_fresh_evaluation(document)

    def test_dirty_removed_subtree_fallback_when_repair_disabled(self):
        document = generate_document(scale=1)
        engine = BatchEngine(document, sigma_repair=False)
        registered = engine.register_view(view_pattern("Q1"), "Q1")
        report = engine.apply(self._dirty_batch(document))
        fallback = report.fallbacks["Q1"]
        assert fallback["reason"] == "dirty_removed_subtree"
        assert fallback["candidates"] >= 1
        assert report.dirty_restored == 0
        assert registered.view.equals_fresh_evaluation(document)

    def test_clean_batches_report_no_fallbacks(self):
        document = generate_document(scale=1)
        engine = BatchEngine(document)
        engine.register_view(view_pattern("Q1"), "Q1")
        report = engine.apply(UpdateBatch([insert_update("X1_L")]))
        assert report.fallbacks == {}
        assert report.repairs == {}
        assert report.dirty_restored == 0


class TestBatchEngineApi:
    def test_batch_of_one_shim_matches_per_statement(self):
        statement = insert_update("X1_L")
        sequential_doc = generate_document(scale=1)
        sequential = MaintenanceEngine(sequential_doc)
        sequential_view = sequential.register_view(view_pattern("Q1"), "Q1")
        sequential.apply_update(statement)
        batch_doc = generate_document(scale=1)
        batched = BatchEngine(batch_doc)
        batch_view = batched.register_view(view_pattern("Q1"), "Q1")
        report = batched.apply_update(statement)
        assert report.statements_applied == 1
        _assert_equivalent(
            {"Q1": sequential_view}, {"Q1": batch_view}, sequential_doc, batch_doc
        )

    def test_empty_batch_is_a_noop(self):
        document = generate_document(scale=1)
        engine = BatchEngine(document)
        registered = engine.register_view(view_pattern("Q1"), "Q1")
        before = registered.view.content()
        report = engine.apply(UpdateBatch())
        assert report.statements_applied == 0
        assert registered.view.content() == before

    def test_wraps_existing_engine_and_shares_views(self):
        document = generate_document(scale=1)
        inner = MaintenanceEngine(document)
        inner.register_view(view_pattern("Q1"), "Q1")
        facade = BatchEngine(inner)
        assert facade.views is inner.views
        with pytest.raises(ValueError):
            BatchEngine(inner, prune_even_terms=False)

    def test_failed_statement_restores_consistency(self):
        document = generate_document(scale=1)
        engine = BatchEngine(document)
        registered = engine.register_view(view_pattern("Q1"), "Q1")
        bad = InsertUpdate("/site/people/person/@id", "<x/>", name="bad")
        with pytest.raises(ValueError):
            engine.apply(UpdateBatch([insert_update("X1_L"), bad]))
        # The first statement reached the document; the views were
        # recomputed to match before the error surfaced.
        assert registered.view.equals_fresh_evaluation(document)

    def test_report_phase_times_populated(self):
        document = generate_document(scale=1)
        engine = BatchEngine(document)
        engine.register_view(view_pattern("Q1"), "Q1")
        report = engine.apply(UpdateBatch([insert_update("X1_L")]))
        phases = report.report_for("Q1").phases
        assert phases.find_target_nodes >= 0.0
        assert phases.total() > 0.0
        assert report.total_maintenance_seconds() >= phases.total()
