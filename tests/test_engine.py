"""The maintenance engine end to end: multi-view, sequences, timing."""

import pytest

from repro.bench.harness import statement_for
from repro.maintenance.engine import PHASES, MaintenanceEngine
from repro.pattern.evaluate import evaluate_bindings
from repro.updates.language import DeleteUpdate, InsertUpdate
from repro.workloads.queries import view_pattern
from repro.workloads.updates import VIEW_UPDATE_GROUPS
from repro.workloads.xmark import generate_document
from tests.conftest import chain_pattern


@pytest.fixture(scope="module")
def xmark_scale1():
    return generate_document(scale=1)


class TestRegistration:
    def test_register_by_pattern_text_and_definition(self, xmark_scale1):
        from repro.workloads.queries import VIEW_TEXTS, view_definition

        engine = MaintenanceEngine(generate_document(scale=1))
        by_pattern = engine.register_view(view_pattern("Q1"), "p")
        by_text = engine.register_view(VIEW_TEXTS["Q1"], "t")
        by_definition = engine.register_view(view_definition("Q2"), "d")
        assert len(by_pattern.view) == len(by_text.view)
        assert by_definition.definition is not None

    def test_duplicate_name_rejected(self):
        engine = MaintenanceEngine(generate_document(scale=1))
        engine.register_view(view_pattern("Q1"), "v")
        with pytest.raises(ValueError):
            engine.register_view(view_pattern("Q2"), "v")

    def test_unregister(self):
        engine = MaintenanceEngine(generate_document(scale=1))
        engine.register_view(view_pattern("Q1"), "v")
        engine.unregister_view("v")
        assert engine.views == {}


class TestMultiView:
    def test_one_statement_updates_all_views(self):
        doc = generate_document(scale=1)
        engine = MaintenanceEngine(doc)
        views = {name: engine.register_view(view_pattern(name), name)
                 for name in ("Q1", "Q17")}
        report = engine.apply_update(statement_for("X1_L", "insert"))
        assert set(report.view_reports) == {"Q1", "Q17"}
        for registered in views.values():
            assert registered.view.equals_fresh_evaluation(doc)

    def test_phase_times_populated(self):
        doc = generate_document(scale=1)
        engine = MaintenanceEngine(doc)
        engine.register_view(view_pattern("Q1"), "Q1")
        report = engine.apply_update(statement_for("X1_L", "insert"))
        phases = report.report_for("Q1").phases
        assert phases.find_target_nodes > 0
        assert phases.total() == sum(phases.as_dict().values())
        assert set(phases.as_dict()) == set(PHASES)


# One slow-ish but decisive matrix: every Figure 20/21 pair is correct.
@pytest.mark.parametrize("view_name", sorted(VIEW_UPDATE_GROUPS))
@pytest.mark.parametrize("kind", ["insert", "delete"])
def test_full_view_update_matrix(view_name, kind):
    for update_name in VIEW_UPDATE_GROUPS[view_name]:
        doc = generate_document(scale=1)
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(view_pattern(view_name), view_name)
        engine.apply_update(statement_for(update_name, kind))
        assert registered.view.equals_fresh_evaluation(doc), (
            view_name,
            update_name,
            kind,
        )


class TestLatticeConsistency:
    @pytest.mark.parametrize("strategy", ["snowcaps", "leaves"])
    def test_lattice_stays_consistent_across_update_mix(self, strategy):
        doc = generate_document(scale=1)
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(view_pattern("Q4"), "Q4", strategy=strategy)
        for statement in (
            statement_for("X2_L", "insert"),
            statement_for("B3_LB", "delete"),
            statement_for("X5_AO", "insert"),
            statement_for("X3_A", "delete"),
        ):
            engine.apply_update(statement)
            assert registered.view.equals_fresh_evaluation(doc)
            for subset in registered.lattice.materialized_sets():
                stored = registered.lattice.relation_for(subset)
                fresh = evaluate_bindings(registered.pattern.subpattern(subset), doc)
                stored_keys = sorted(tuple(c.id for c in r) for r in stored.rows)
                fresh_keys = sorted(tuple(c.id for c in r) for r in fresh.rows)
                assert stored_keys == fresh_keys, sorted(subset)

    def test_profile_driven_chain_consistent(self):
        doc = generate_document(scale=1)
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(
            view_pattern("Q4"), "Q4", update_profile=["increase"]
        )
        engine.apply_update(statement_for("X2_L", "insert"))
        assert registered.view.equals_fresh_evaluation(doc)
        for subset in registered.lattice.materialized_sets():
            stored = registered.lattice.relation_for(subset)
            fresh = evaluate_bindings(registered.pattern.subpattern(subset), doc)
            assert sorted(tuple(c.id for c in r) for r in stored.rows) == sorted(
                tuple(c.id for c in r) for r in fresh.rows
            )


class TestSequences:
    def test_unoptimized_sequence(self):
        doc = generate_document(scale=1)
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(view_pattern("Q1"), "Q1")
        reports = engine.apply_sequence(
            [statement_for("X1_L", "insert"), statement_for("A6_A", "delete")]
        )
        assert len(reports) == 2
        assert registered.view.equals_fresh_evaluation(doc)

    def test_optimized_sequence_same_result(self):
        plain_doc = generate_document(scale=1)
        plain_engine = MaintenanceEngine(plain_doc)
        plain = plain_engine.register_view(view_pattern("Q1"), "Q1")
        plain_engine.apply_sequence(
            [
                InsertUpdate("/site/people/person", "<tag/>", name="i"),
                DeleteUpdate("/site/people/person[profile]", name="d"),
            ]
        )

        opt_doc = generate_document(scale=1)
        opt_engine = MaintenanceEngine(opt_doc)
        optimized = opt_engine.register_view(view_pattern("Q1"), "Q1")
        opt_engine.apply_sequence(
            [
                InsertUpdate("/site/people/person", "<tag/>", name="i"),
                DeleteUpdate("/site/people/person[profile]", name="d"),
            ],
            optimize=True,
        )
        assert optimized.view.equals_fresh_evaluation(opt_doc)
        assert plain.view.content() == optimized.view.content()
