"""XPath{/,//,*,[]} parsing, evaluation and pattern conversion."""

import pytest

from repro.pattern.xpath_parser import (
    XPathSyntaxError,
    evaluate_path,
    parse_xpath,
    path_to_pattern,
)


def ids(nodes):
    return [str(n.id) for n in nodes]


class TestParsing:
    def test_steps_and_axes(self):
        path = parse_xpath("/a//b/c")
        assert [s.axis for s in path.steps] == ["child", "desc", "child"]
        assert path.absolute

    def test_relative(self):
        path = parse_xpath("b/c")
        assert not path.absolute

    def test_wildcard_attribute_text(self):
        path = parse_xpath("//*/@id/text()")
        assert [s.test for s in path.steps] == ["*", "@id", "text()"]

    def test_trailing_tokens_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/a b")

    def test_empty_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("")

    def test_predicate_variants_parse(self):
        parse_xpath("//person[phone and homepage]")
        parse_xpath("//person[phone or homepage]")
        parse_xpath("//person[address and (phone or homepage) and (creditcard or profile)]")
        parse_xpath("//person[@id = 'person0']")
        parse_xpath("//person[profile/@income]")

    def test_conjunctive_detection(self):
        assert parse_xpath("//a[b and c]").is_conjunctive()
        assert not parse_xpath("//a[b or c]").is_conjunctive()


class TestEvaluation:
    def test_absolute_child_anchors_at_root(self, people_document):
        assert ids(evaluate_path("/site/people", people_document)) == ["site1.people1"]
        assert evaluate_path("/people", people_document) == []

    def test_descendant_axis(self, people_document):
        assert len(evaluate_path("//name", people_document)) == 3

    def test_wildcard_step(self, people_document):
        out = evaluate_path("/site/*/person", people_document)
        assert len(out) == 3

    def test_attribute_step(self, people_document):
        out = evaluate_path("/site/people/person/@id", people_document)
        assert [n.val for n in out] == ["person0", "person1", "person2"]

    def test_existence_predicate(self, people_document):
        out = evaluate_path("//person[homepage]", people_document)
        assert [n.attribute("id").val for n in out] == ["person0", "person2"]

    def test_and_or_predicates(self, people_document):
        both = evaluate_path("//person[phone and homepage]", people_document)
        assert len(both) == 1
        either = evaluate_path("//person[phone or homepage]", people_document)
        assert len(either) == 2

    def test_value_comparison(self, people_document):
        out = evaluate_path("//person[name = 'Ann']", people_document)
        assert len(out) == 2

    def test_attribute_comparison(self, people_document):
        out = evaluate_path("//person[@id = 'person1']", people_document)
        assert len(out) == 1

    def test_nested_predicate_path(self, people_document):
        out = evaluate_path("//person[profile/@income]", people_document)
        assert len(out) == 1

    def test_results_in_document_order_and_deduped(self, people_document):
        out = evaluate_path("//person", people_document)
        assert ids(out) == sorted(ids(out))

    def test_text_step(self, people_document):
        out = evaluate_path("//name/text()", people_document)
        assert sorted(n.val for n in out) == ["Ann", "Ann", "Bob"]


class TestPatternConversion:
    def test_linear_path(self):
        pattern = path_to_pattern("/site/people/person")
        assert [n.label for n in pattern.nodes()] == ["site", "people", "person"]
        assert pattern.node("person#1").store_id

    def test_predicates_become_branches(self):
        pattern = path_to_pattern("//person[profile/@income]/name")
        labels = [n.label for n in pattern.nodes()]
        assert labels == ["person", "profile", "@income", "name"]
        assert pattern.node("name#1").store_id

    def test_value_predicate_lands_on_leaf(self):
        pattern = path_to_pattern("//person[@id = 'p0']")
        assert pattern.node("@id#1").value_pred == "p0"

    def test_annotation_choice(self):
        pattern = path_to_pattern("//a/b", annotate_last=("ID", "val", "cont"))
        b = pattern.node("b#1")
        assert b.store_id and b.store_val and b.store_cont

    def test_disjunction_rejected(self):
        with pytest.raises(XPathSyntaxError):
            path_to_pattern("//a[b or c]")
