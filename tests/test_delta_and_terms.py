"""Δ tables (CD+/CD−) and term expansion/pruning: the paper's Section 3
examples, re-enacted literally.
"""

import pytest

from repro.maintenance.delta import compute_delta_minus, compute_delta_plus, doomed_nodes
from repro.maintenance.terms import (
    Term,
    expand_delete_terms,
    expand_insert_terms,
    prune_by_empty_delta,
    prune_delete_by_ids,
    prune_insert_by_ids,
)
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.updates.language import DeleteUpdate, InsertUpdate
from repro.updates.pul import apply_pul, compute_pul
from repro.xmldom.parser import parse_document
from tests.conftest import branch_pattern, chain_pattern, v2_pattern


def delta_labels(terms, pattern):
    """Render each term's Δ-set as a label string like 'bc'."""
    return sorted(
        "".join(sorted(name.split("#")[0] for name in term.delta_set))
        for term in terms
    )


class TestDeltaTables:
    def test_example_3_1_delta_tables(self):
        # xml1 = <a><b/><b><c/></b></a> inserted into a document.
        doc = parse_document("<r><x/></r>")
        update = InsertUpdate("//x", "<a><b/><b><c/></b></a>")
        pul = compute_pul(doc, update)
        applied = apply_pul(doc, pul)
        pattern = chain_pattern("a", "b", "c")
        deltas = compute_delta_plus(pattern, applied.inserted_roots)
        assert len(deltas.nodes("a#1")) == 1
        assert len(deltas.nodes("b#1")) == 2
        assert len(deltas.nodes("c#1")) == 1
        assert deltas.nonempty_names() == ["a#1", "b#1", "c#1"]

    def test_example_3_4_missing_label(self):
        # xml2 = <a><b/><b/></a>: Δ+_c is empty.
        doc = parse_document("<r><x/></r>")
        applied = apply_pul(doc, compute_pul(doc, InsertUpdate("//x", "<a><b/><b/></a>")))
        pattern = chain_pattern("a", "b", "c")
        deltas = compute_delta_plus(pattern, applied.inserted_roots)
        assert deltas.is_empty("c#1")

    def test_example_3_5_value_predicate_filters_delta(self):
        # v2 = //a[val=5]//b, xml3 = <a>3<b/><b/></a>: σ_a(Δ+_a) = ∅.
        doc = parse_document("<r><x/></r>")
        applied = apply_pul(doc, compute_pul(doc, InsertUpdate("//x", "<a>3<b/><b/></a>")))
        pattern = chain_pattern("a", "b")
        pattern.node("a#1").value_pred = "5"
        deltas = compute_delta_plus(pattern, applied.inserted_roots)
        assert deltas.is_empty("a#1")
        assert len(deltas.nodes("b#1")) == 2

    def test_delta_minus_from_doomed_set(self, fig2_document):
        targets = [fig2_document.nodes_with_label("f")[0]]
        doomed = doomed_nodes(targets)
        pattern = chain_pattern("c", "b")
        deltas = compute_delta_minus(pattern, doomed)
        assert deltas.is_empty("c#1")
        assert [str(n.id) for n in deltas.nodes("b#1")] == ["a1.f2.b1"]

    def test_wildcard_delta(self):
        doc = parse_document("<r><x/></r>")
        applied = apply_pul(doc, compute_pul(doc, InsertUpdate("//x", "<a><b/></a>")))
        star = Pattern(PatternNode("*", axis="desc", store_id=True))
        deltas = compute_delta_plus(star, applied.inserted_roots)
        assert len(deltas.nodes("*#1")) == 2  # elements only


class TestInsertTermExpansion:
    def test_chain_terms_are_snowcap_complements(self):
        # For //a//b//c the surviving Δ-sets are the suffixes: c, bc, abc.
        pattern = chain_pattern("a", "b", "c")
        terms = expand_insert_terms(pattern)
        assert delta_labels(terms, pattern) == ["abc", "bc", "c"]

    def test_branch_terms_match_figure6_snowcaps(self):
        # Complements of {∅-excluded} snowcaps + full set: for
        # //a[//b//c]//d the Δ-sets are complements of a,ab,ad,abc,abd
        # plus the all-Δ term.
        pattern = branch_pattern()
        terms = expand_insert_terms(pattern)
        assert delta_labels(terms, pattern) == sorted(
            ["bcd", "cd", "bc", "d", "c", "abcd"]
        )

    def test_prune_by_empty_delta_example_3_4(self):
        doc = parse_document("<r><x/></r>")
        applied = apply_pul(doc, compute_pul(doc, InsertUpdate("//x", "<a><b/><b/></a>")))
        pattern = chain_pattern("a", "b", "c")
        deltas = compute_delta_plus(pattern, applied.inserted_roots)
        surviving = prune_by_empty_delta(expand_insert_terms(pattern), deltas)
        assert surviving == []  # every term involves Δ+_c = ∅ (Ex. 3.4)

    def test_prune_by_ids_example_3_7(self):
        # xml4 = <b><c/></b> inserted under an <a> with no b ancestor:
        # the term R_a R_b Δ+_c dies, only R_a Δ+_b Δ+_c survives.
        doc = parse_document("<r><a><d/></a></r>")
        update = InsertUpdate("//a", "<b><c/></b>")
        pul = compute_pul(doc, update)
        target_ids = [op.target.id for op in pul.inserts()]
        applied = apply_pul(doc, pul)
        pattern = chain_pattern("a", "b", "c")
        deltas = compute_delta_plus(pattern, applied.inserted_roots)
        terms = prune_by_empty_delta(expand_insert_terms(pattern), deltas)
        assert delta_labels(terms, pattern) == ["bc", "c"]  # Δ+_a is empty
        surviving = prune_insert_by_ids(terms, pattern, target_ids)
        assert delta_labels(surviving, pattern) == ["bc"]

    def test_id_pruning_keeps_term_when_ancestor_label_present(self):
        # Same insertion, but the target sits under an existing b.
        doc = parse_document("<r><b><a/></b></r>")
        update = InsertUpdate("//a", "<b><c/></b>")
        pul = compute_pul(doc, update)
        target_ids = [op.target.id for op in pul.inserts()]
        applied = apply_pul(doc, pul)
        pattern = chain_pattern("a", "b", "c")
        deltas = compute_delta_plus(pattern, applied.inserted_roots)
        terms = prune_by_empty_delta(expand_insert_terms(pattern), deltas)
        surviving = prune_insert_by_ids(terms, pattern, target_ids)
        assert delta_labels(surviving, pattern) == ["bc", "c"]

    def test_wildcard_parent_never_prunes(self):
        star = PatternNode("*", axis="desc", store_id=True)
        star.add_child(PatternNode("b", axis="desc", store_id=True))
        pattern = Pattern(star)
        doc = parse_document("<r><x/></r>")
        update = InsertUpdate("//x", "<b/>")
        pul = compute_pul(doc, update)
        target_ids = [op.target.id for op in pul.inserts()]
        terms = [Term(frozenset({"b#1"}))]
        assert prune_insert_by_ids(terms, pattern, target_ids) == terms


class TestDeleteTermExpansion:
    def test_example_4_4_signs(self):
        # //a[//c]//b: Δ-sets and signs per Prop 4.3(i).
        pattern = v2_pattern()
        terms = expand_delete_terms(pattern)
        by_labels = {
            "".join(sorted(n.split("#")[0] for n in t.delta_set)): t.sign
            for t in terms
        }
        assert by_labels == {
            "b": 1, "c": 1, "bc": -1, "abc": 1,
        }

    def test_prune_even_terms(self):
        pattern = v2_pattern()
        terms = expand_delete_terms(pattern, prune_even_terms=True)
        assert all(term.sign == 1 for term in terms)
        assert delta_labels(terms, pattern) == ["abc", "b", "c"]

    def test_example_4_6_id_pruning(self):
        # v = //c//b, delete //f in Figure 11's document: the single
        # doomed b (a1.f2.b1) has no c ancestor, so R_c Δ−_b is empty.
        doc = parse_document("<a><c><b>hi</b></c><f><b>yo</b></f></a>")
        targets = [doc.nodes_with_label("f")[0]]
        doomed = doomed_nodes(targets)
        pattern = chain_pattern("c", "b")
        deltas = compute_delta_minus(pattern, doomed)
        terms = prune_by_empty_delta(
            expand_delete_terms(pattern, prune_even_terms=True), deltas
        )
        surviving = prune_delete_by_ids(terms, pattern, deltas)
        assert delta_labels(surviving, pattern) == []

    def test_example_4_5_pruning_pipeline(self, fig12_document):
        # v2 = //a[//c]//b, delete //a/f/c: Δ−_a = ∅ leaves
        # R_aR_bΔ−_c and R_aΔ−_bR_c ... i.e. Δ-sets {c} and {b}.
        pattern = v2_pattern()
        update = DeleteUpdate("/a/f/c")
        pul = compute_pul(fig12_document, update)
        doomed = doomed_nodes([op.target for op in pul.deletes()])
        deltas = compute_delta_minus(pattern, doomed)
        terms = prune_by_empty_delta(
            expand_delete_terms(pattern, prune_even_terms=True), deltas
        )
        surviving = prune_delete_by_ids(terms, pattern, deltas)
        assert delta_labels(surviving, pattern) == ["b", "c"]
