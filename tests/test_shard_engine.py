"""The sharded maintenance subsystem: planner, executor, merge, engine.

The central property (also enforced by ``benchmarks/
bench_shard_pipeline.py``): propagating a batch with any worker count
leaves every view extent *byte-identical* to serial propagation and to
fresh re-evaluation.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.relation import Relation
from repro.maintenance.engine import BatchEngine, MaintenanceEngine
from repro.maintenance.queue import ApplyQueue
from repro.sharding import (
    ShardExecutor,
    ShardPlanner,
    ShardSession,
    merge_addition_fragments,
    merge_embedding_fragments,
    resolve_snowcap_fragment,
    shard_of_label,
)
from repro.maintenance.delta import BatchCandidates
from repro.updates.language import UpdateBatch
from repro.workloads.queries import view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document
from repro.xmldom.dewey import DeweyID
from repro.xmldom.parser import parse_document

VIEWS = ("Q1", "Q3", "Q6")


def _engines(scale=1, workers=0, views=VIEWS):
    document = generate_document(scale=scale)
    engine = BatchEngine(document, workers=workers)
    registered = {name: engine.register_view(view_pattern(name), name) for name in views}
    return document, engine, registered


def _apply_stream(workers, stream, scale=1, views=VIEWS, **apply_options):
    document, engine, registered = _engines(scale=scale, views=views)
    report = engine.apply(UpdateBatch(stream), workers=workers, **apply_options)
    return document, registered, report


# -- planner ----------------------------------------------------------------


class TestShardPlanner:
    def test_shard_of_label_is_stable_and_bounded(self):
        planner = ShardPlanner(4)
        for label in ("person", "name", "increase", "item", "#text", "@id"):
            shard = planner.shard_of(label)
            assert 0 <= shard < 4
            assert shard == shard_of_label(label, 4)  # hash is stable

    def test_single_shard_maps_everything_to_zero(self):
        planner = ShardPlanner(1)
        assert {planner.shard_of(l) for l in ("a", "b", "c")} == {0}

    def test_partition_candidates_partitions_exactly(self, people_document):
        nodes = [
            node
            for label in ("person", "name", "phone", "#text")
            for node in people_document.nodes_with_label(label)
        ]
        candidates = BatchCandidates(nodes)
        planner = ShardPlanner(3)
        fragments = planner.partition_candidates(candidates)
        rebuilt = sorted(
            (node.id for fragment in fragments.values() for node in fragment.nodes)
        )
        assert rebuilt == [node.id for node in candidates.nodes]
        for shard, fragment in fragments.items():
            assert all(
                planner.shard_of(label) == shard for label in fragment.by_label
            )

    def test_touched_labels_is_a_liveness_certificate(self, people_document):
        planner = ShardPlanner(4)
        pattern = view_pattern("Q1")  # site/people/person[@id]/name
        candidates = BatchCandidates(people_document.nodes_with_label("phone"))
        assert planner.touched_labels(pattern, candidates) == []
        candidates = BatchCandidates(people_document.nodes_with_label("name"))
        assert planner.touched_labels(pattern, candidates) == ["name"]

    def test_coerce(self):
        planner = ShardPlanner(2)
        assert ShardPlanner.coerce(planner, 4) is planner
        assert ShardPlanner.coerce(8, 4).shards == 8
        assert ShardPlanner.coerce(None, 6).shards == 6
        assert ShardPlanner.coerce(None, 0).shards == 4
        with pytest.raises(TypeError):
            ShardPlanner.coerce("many", 4)
        with pytest.raises(ValueError):
            ShardPlanner(0)

    def test_order_units_is_deterministic_lpt(self):
        class Unit:
            def __init__(self, estimate, shard, kind, view_name):
                self.estimate = estimate
                self.shard = shard
                self.kind = kind
                self.view_name = view_name

        units = [Unit(1, 0, "plus", "a"), Unit(9, 1, "plus", "b"), Unit(9, 0, "minus", "c")]
        ordered = ShardPlanner(4).order_units(units)
        assert [u.view_name for u in ordered] == ["c", "b", "a"]


# -- executor ---------------------------------------------------------------


class _SquareUnit:
    kind = "square"
    labels = ()

    def __init__(self, value):
        self.view_name = "v%d" % value
        self.shard = value % 4
        self.estimate = value
        self.value = value

    def execute(self):
        return self.value * self.value


class _FailingUnit(_SquareUnit):
    def execute(self):
        raise RuntimeError("unit exploded")


class TestShardExecutor:
    def test_serial_mode(self):
        executor = ShardExecutor(0)
        assert not executor.parallel
        result = executor.run([_SquareUnit(v) for v in range(5)])
        assert result.fragments == [0, 1, 4, 9, 16]
        assert result.mode == "serial"
        assert len(result.unit_seconds) == 5

    @pytest.mark.parametrize("mode", ["fork", "thread"])
    def test_pool_modes_match_serial(self, mode):
        executor = ShardExecutor(2, mode=mode)
        result = executor.run([_SquareUnit(v) for v in range(6)])
        assert result.fragments == [0, 1, 4, 9, 16, 25]

    def test_single_unit_runs_inline_even_when_parallel(self):
        result = ShardExecutor(4).run([_SquareUnit(3)])
        assert result.fragments == [9]

    def test_empty_round(self):
        result = ShardExecutor(4).run([])
        assert result.fragments == [] and result.wall_seconds == 0.0

    def test_worker_failure_propagates(self):
        with pytest.raises(RuntimeError, match="unit exploded"):
            ShardExecutor(2).run([_SquareUnit(1), _FailingUnit(2)])

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ShardExecutor(-1)
        with pytest.raises(ValueError):
            ShardExecutor(2, mode="rayon")


# -- merge ------------------------------------------------------------------


class TestMerge:
    def test_addition_fragments_sum_in_dewey_order(self):
        a = DeweyID.root("a")
        b = a.child("b", (1,))
        c = a.child("c", (2,))
        merged = merge_addition_fragments([{(c,): 1, (a,): 2}, {(a,): 1, (b,): 4}])
        assert merged == {(a,): 3, (b,): 4, (c,): 1}
        assert list(merged) == [(a,), (b,), (c,)]

    def test_single_addition_fragment_passes_through(self):
        fragment = {("row",): 2}
        assert merge_addition_fragments([fragment]) is fragment

    def test_embedding_fragments_dedupe_across_terms(self):
        a = DeweyID.root("a")
        b = a.child("b", (1,))
        # The same embedding (a, b) surfacing in two fragments counts once.
        one = {(a, b): ("row1",)}
        two = {(a, b): ("row1",), (a, a.child("b", (2,))): ("row1",)}
        merged = merge_embedding_fragments([one, two])
        assert merged == {("row1",): 2}

    def test_resolve_snowcap_fragment_roundtrip(self, people_document):
        person = people_document.nodes_with_label("person")[0]
        name = people_document.nodes_with_label("name")[0]
        fragment = {
            frozenset({"person#1", "name#1"}): (
                ("person#1", "name#1"),
                [(person.id, name.id)],
            )
        }
        relations = resolve_snowcap_fragment(fragment, people_document)
        assert relations[frozenset({"person#1", "name#1"})].rows == [(person, name)]

    def test_resolve_snowcap_fragment_passes_relations_through(self, people_document):
        relation = Relation(("person#1",), [(people_document.nodes_with_label("person")[0],)])
        fragment = {frozenset({"person#1"}): relation}
        assert resolve_snowcap_fragment(fragment, people_document)[
            frozenset({"person#1"})
        ] is relation

    def test_resolve_snowcap_fragment_rejects_dead_ids(self, people_document):
        ghost = DeweyID.root("site").child("nowhere", (9,))
        fragment = {frozenset({"x#1"}): (("x#1",), [(ghost,)])}
        with pytest.raises(LookupError):
            resolve_snowcap_fragment(fragment, people_document)


# -- engine equivalence ------------------------------------------------------


class TestShardedPropagation:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_insert_stream_extents_identical(self, workers):
        stream = statement_stream(
            generate_document(scale=1), 24, seed=3, insert_ratio=1.0
        )
        _, serial_views, serial_report = _apply_stream(0, stream)
        document, sharded_views, report = _apply_stream(workers, stream)
        for name in VIEWS:
            assert (
                serial_views[name].view.content() == sharded_views[name].view.content()
            ), name
            assert sharded_views[name].view.equals_fresh_evaluation(document), name
        assert report.workers == workers
        assert report.shard_rounds and report.shard_seconds >= 0.0
        assert serial_report.workers == 0 and serial_report.shard_seconds == 0.0

    def test_mixed_stream_two_rounds_identical(self):
        # Deletions force the two-round structure (Δ− before the
        # lattice drops doomed rows, Δ+ after).
        stream = statement_stream(
            generate_document(scale=1), 24, seed=5, insert_ratio=0.5
        )
        _, serial_views, serial_report = _apply_stream(0, stream)
        document, sharded_views, report = _apply_stream(2, stream)
        for name in VIEWS:
            assert (
                serial_views[name].view.content() == sharded_views[name].view.content()
            ), name
            assert sharded_views[name].view.equals_fresh_evaluation(document), name
        assert serial_report.fallbacks == report.fallbacks

    def test_shard_plan_override_accepts_counts_and_planners(self):
        stream = statement_stream(
            generate_document(scale=1), 8, seed=2, insert_ratio=1.0
        )
        _, baseline, _ = _apply_stream(0, stream)
        for shard_plan in (1, 16, ShardPlanner(3)):
            document, views, _ = _apply_stream(2, stream, shard_plan=shard_plan)
            for name in VIEWS:
                assert views[name].view.content() == baseline[name].view.content()

    def test_engine_level_defaults_apply(self):
        stream = statement_stream(
            generate_document(scale=1), 8, seed=4, insert_ratio=1.0
        )
        document = generate_document(scale=1)
        engine = BatchEngine(document, workers=2, shard_plan=8)
        views = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
        report = engine.apply(UpdateBatch(stream))
        assert report.workers == 2
        for name in VIEWS:
            assert views[name].view.equals_fresh_evaluation(document), name

    def test_sigma_flip_repairs_under_sharding(self):
        # Inserting text under a σ-watched node flips its predicate;
        # the sharded path must run the same in-place repair as the
        # serial one (no fallback, identical repaired extent).
        document = parse_document(
            "<site><open_auctions><open_auction><bidder>"
            "<increase>4.50</increase></bidder></open_auction>"
            "</open_auctions></site>"
        )
        engine = MaintenanceEngine(document, workers=2)
        registered = engine.register_view(view_pattern("Q3"), "Q3")
        from repro.updates.language import parse_update

        report = engine.apply_batch(
            [parse_update("for $i in //increase insert extra", name="flip")]
        )
        assert report.fallbacks == {}
        assert report.repairs["Q3"]["sigma_flips"] == 1
        assert registered.view.equals_fresh_evaluation(document)

    def test_sigma_flip_fallback_recomputes_on_shards(self):
        # With repair disabled, the fallback recompute itself fans out
        # as shard units -- extents must match the serial recompute.
        document = parse_document(
            "<site><open_auctions><open_auction><bidder>"
            "<increase>4.50</increase></bidder>"
            "<bidder><increase>7.25</increase></bidder></open_auction>"
            "</open_auctions></site>"
        )
        engine = MaintenanceEngine(document, workers=2, sigma_repair=False)
        views = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
        from repro.updates.language import parse_update

        report = engine.apply_batch(
            [parse_update("for $i in //increase insert extra", name="flip")]
        )
        assert report.fallbacks["Q3"]["reason"] == "predicate_flip"
        for name in VIEWS:
            assert views[name].view.equals_fresh_evaluation(document), name

    def test_queue_fans_out_maintenance_rounds(self):
        stream = statement_stream(
            generate_document(scale=1), 16, seed=9, insert_ratio=0.8
        )
        _, baseline, _ = _apply_stream(0, stream)
        document, engine, views = _engines()
        with ApplyQueue(engine, max_batch_size=4, workers=2) as queue:
            tickets = queue.extend_async(stream)
            queue.flush()
            report = tickets[0].result(timeout=30)
        assert report.workers == 2
        for name in VIEWS:
            assert views[name].view.equals_fresh_evaluation(document), name

    def test_session_stream_extents_identical(self):
        # The resident replica workers over a mixed multi-batch stream
        # (the ApplyQueue shape) must track serial batch application
        # byte-for-byte, including batches that trip fallbacks.
        stream = statement_stream(
            generate_document(scale=1), 48, seed=13, insert_ratio=0.7
        )
        batches = [stream[i : i + 12] for i in range(0, len(stream), 12)]
        _, serial_engine, serial_views = _engines()
        for batch in batches:
            serial_engine.apply(UpdateBatch(batch))
        document, engine, views = _engines()
        with engine.engine.session(workers=2) as session:
            reports = [session.apply_batch(UpdateBatch(b)) for b in batches]
        assert all(report.workers == 2 for report in reports)
        assert all(
            shard_round["mode"] == "session"
            for report in reports
            for shard_round in report.shard_rounds
        )
        for name in VIEWS:
            assert (
                serial_views[name].view.content() == views[name].view.content()
            ), name
            assert views[name].view.equals_fresh_evaluation(document), name

    def test_session_locks_engine_and_resyncs_on_close(self):
        stream = statement_stream(
            generate_document(scale=1), 8, seed=2, insert_ratio=1.0
        )
        document, engine, views = _engines()
        session = engine.engine.session(workers=2)
        try:
            session.apply_batch(UpdateBatch(stream))
            with pytest.raises(RuntimeError, match="ShardSession"):
                engine.apply(UpdateBatch(stream))
            with pytest.raises(RuntimeError, match="ShardSession"):
                engine.engine.session(workers=2)
            with pytest.raises(RuntimeError, match="ShardSession"):
                engine.register_view(view_pattern("Q2"), "Q2")
            with pytest.raises(RuntimeError, match="ShardSession"):
                engine.unregister_view("Q1")
        finally:
            session.close()
        # Post-close: lattices resynced, serial propagation is exact again.
        engine.apply(
            UpdateBatch(
                statement_stream(document, 6, seed=3, insert_ratio=1.0)
            )
        )
        for name in VIEWS:
            assert views[name].view.equals_fresh_evaluation(document), name
        with pytest.raises(RuntimeError, match="closed"):
            session.apply_batch(UpdateBatch(stream))

    def test_session_weights_drive_assignment(self):
        _, engine, _ = _engines()
        weights = {"Q1": 100.0, "Q3": 1.0, "Q6": 1.0}
        with ShardSession(engine, workers=2, weights=weights) as session:
            assignment = session.assignment
            # The heavy view sits alone; the two light ones share.
            assert assignment["Q3"] == assignment["Q6"] != assignment["Q1"]

    def test_session_sequential_send_is_equivalent(self):
        stream = statement_stream(
            generate_document(scale=1), 16, seed=21, insert_ratio=0.8
        )
        _, serial_engine, serial_views = _engines()
        serial_engine.apply(UpdateBatch(stream))
        document, engine, views = _engines()
        with engine.engine.session(workers=2) as session:
            session.sequential_send = True
            session.apply_batch(UpdateBatch(stream))
        for name in VIEWS:
            assert (
                serial_views[name].view.content() == views[name].view.content()
            ), name

    def test_session_poison_batch_fails_only_itself(self):
        from repro.updates.language import InsertUpdate

        document, engine, views = _engines()
        session = engine.engine.session(workers=2)
        try:
            session.apply_batch(
                UpdateBatch(statement_stream(document, 4, seed=1, insert_ratio=1.0))
            )
            # Inserting into an attribute fails resolution identically
            # on the owner and on every replica: the batch is poisoned,
            # the session survives.
            bad = InsertUpdate("/site/people/person/@id", "<x/>", name="bad")
            with pytest.raises(ValueError):
                session.apply_batch(UpdateBatch([bad]))
            assert not session._closed
            for name in VIEWS:
                assert views[name].view.equals_fresh_evaluation(document), name
            session.apply_batch(
                UpdateBatch(statement_stream(document, 4, seed=8, insert_ratio=1.0))
            )
            for name in VIEWS:
                assert views[name].view.equals_fresh_evaluation(document), name
        finally:
            session.close()

    def test_session_dead_worker_poisons_and_restores(self):
        stream = statement_stream(
            generate_document(scale=1), 8, seed=4, insert_ratio=1.0
        )
        document, engine, views = _engines()
        session = engine.engine.session(workers=2)
        session.apply_batch(UpdateBatch(stream))
        session._processes[0].terminate()
        session._processes[0].join()
        with pytest.raises(RuntimeError, match="worker died"):
            session.apply_batch(UpdateBatch(statement_stream(document, 4, seed=5)))
        # Wait: the poison statement list resolved against the *owner*
        # document, which did apply -- extents must match it exactly.
        for name in VIEWS:
            assert views[name].view.equals_fresh_evaluation(document), name
        assert session._closed
        # Engine is usable again (session closed itself).
        engine.apply(UpdateBatch(statement_stream(document, 4, seed=6)))
        for name in VIEWS:
            assert views[name].view.equals_fresh_evaluation(document), name

    def test_session_feeds_apply_queue(self):
        stream = statement_stream(
            generate_document(scale=1), 24, seed=31, insert_ratio=0.8
        )
        _, serial_engine, serial_views = _engines()
        for i in range(0, len(stream), 8):
            serial_engine.apply(UpdateBatch(stream[i : i + 8]))
        document, engine, views = _engines()
        session = engine.engine.session(workers=2)
        try:
            with ApplyQueue(session, max_batch_size=8) as queue:
                queue.extend_async(stream)
                queue.flush()
        finally:
            session.close()
        for name in VIEWS:
            assert (
                serial_views[name].view.content() == views[name].view.content()
            ), name

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        insert_ratio=st.sampled_from([1.0, 0.7, 0.4]),
        workers=st.sampled_from([1, 2]),
    )
    def test_property_sharded_equals_serial(self, seed, insert_ratio, workers):
        stream = statement_stream(
            generate_document(scale=1), 12, seed=seed, insert_ratio=insert_ratio
        )
        _, serial_views, serial_report = _apply_stream(0, stream)
        document, sharded_views, report = _apply_stream(workers, stream)
        for name in VIEWS:
            assert (
                serial_views[name].view.content() == sharded_views[name].view.content()
            ), (seed, name)
            assert sharded_views[name].view.equals_fresh_evaluation(document), (
                seed,
                name,
            )
        assert serial_report.fallbacks == report.fallbacks, seed
