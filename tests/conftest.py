"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.xmldom.parser import parse_document


@pytest.fixture
def fig2_document():
    """The running example of Figure 2 / Figure 11: a(c(b), f(b))."""
    return parse_document("<a><c><b>hi</b></c><f><b>yo</b></f></a>")


@pytest.fixture
def fig12_document():
    """The Example 4.5 document: a(c(b1,b2), f(c(b), b))."""
    return parse_document(
        "<a><c><b>1</b><b>2</b></c><f><c><b>3</b></c><b>4</b></f></a>"
    )


@pytest.fixture
def people_document():
    """A small auction-ish document used across the language tests."""
    return parse_document(
        "<site><people>"
        '<person id="person0"><name>Ann</name><phone>1</phone>'
        "<homepage>h0</homepage></person>"
        '<person id="person1"><name>Bob</name></person>'
        '<person id="person2"><name>Ann</name><homepage>h2</homepage>'
        '<profile income="9">x</profile></person>'
        "</people></site>"
    )


def chain_pattern(*labels, axis="desc", annotate="ID"):
    """//l1//l2//...//lk with the chosen annotation on every node."""
    nodes = []
    for index, label in enumerate(labels):
        node = PatternNode(
            label,
            axis=axis if index > 0 or axis == "desc" else "child",
            store_id="ID" in annotate,
            store_val="val" in annotate,
            store_cont="cont" in annotate,
        )
        if nodes:
            nodes[-1].add_child(node)
        nodes.append(node)
    return Pattern(nodes[0])


def branch_pattern():
    """The Figure 6 view: //a[//b//c]//d (IDs everywhere)."""
    a = PatternNode("a", axis="desc", store_id=True)
    b = a.add_child(PatternNode("b", axis="desc", store_id=True))
    b.add_child(PatternNode("c", axis="desc", store_id=True))
    a.add_child(PatternNode("d", axis="desc", store_id=True))
    return Pattern(a)


def v2_pattern():
    """The Example 4.4/4.5 view: //a[//c]//b (IDs everywhere)."""
    a = PatternNode("a", axis="desc", store_id=True)
    a.add_child(PatternNode("c", axis="desc", store_id=True))
    a.add_child(PatternNode("b", axis="desc", store_id=True))
    return Pattern(a)
