"""Hash-seed determinism: extents are PYTHONHASHSEED-independent.

The repro-lint determinism rules guard this statically; here we close
the loop dynamically.  A child process (so the seed actually takes --
the parent interpreter's hash seed is fixed at startup) builds an XMark
document, applies the same statement stream once serially and once
through a resident ShardSession (forked replica workers), and prints a
canonical digest per mode.  Running the child under two different
``PYTHONHASHSEED`` values must produce one identical digest across all
four runs: serial == session within a seed (the shard contract) and
seed A == seed B (no hash-order dependence anywhere in the pipeline).
"""

import multiprocessing
import os
import subprocess
import sys

import pytest

_CHILD_SCRIPT = r"""
import hashlib
import sys

from repro.maintenance.engine import BatchEngine
from repro.updates.language import UpdateBatch
from repro.views.view import row_sort_key
from repro.workloads.queries import view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document

VIEWS = ("Q1", "Q3", "Q6")


def build():
    document = generate_document(scale=1)
    engine = BatchEngine(document)
    views = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
    stream = statement_stream(document, 36, seed=13, insert_ratio=0.7)
    batches = [stream[i : i + 12] for i in range(0, len(stream), 12)]
    return engine, views, batches


def digest(views):
    hasher = hashlib.sha256()
    for name in VIEWS:
        hasher.update(name.encode("ascii"))
        for row, count in views[name].view.content():
            hasher.update(repr((row_sort_key(row), count)).encode("utf-8"))
    return hasher.hexdigest()


engine, views, batches = build()
for batch in batches:
    engine.apply(UpdateBatch(batch))
print("serial", digest(views))

engine, views, batches = build()
with engine.engine.session(workers=2) as session:
    for batch in batches:
        session.apply_batch(UpdateBatch(batch))
print("session", digest(views))
"""


def _run_child(hashseed: str):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    digests = dict(line.split() for line in result.stdout.splitlines() if line)
    assert set(digests) == {"serial", "session"}, result.stdout
    return digests


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="session workers need fork",
)
def test_extents_identical_across_hash_seeds_and_modes():
    seed_a = _run_child("0")
    seed_b = _run_child("4242")
    # serial == session within each seed: the shard/session contract.
    assert seed_a["serial"] == seed_a["session"]
    assert seed_b["serial"] == seed_b["session"]
    # seed A == seed B: nothing in the pipeline orders by string hash.
    assert seed_a["serial"] == seed_b["serial"]
