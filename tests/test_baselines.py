"""Baselines: full recomputation and node-at-a-time IVMA."""

import pytest

from repro.baselines.ivma import IVMAMaintainer
from repro.baselines.recompute import full_recompute, recompute_after_update
from repro.maintenance.delta import doomed_nodes
from repro.maintenance.engine import MaintenanceEngine
from repro.updates.language import DeleteUpdate, InsertUpdate
from repro.updates.pul import apply_pul, compute_pul
from repro.views.lattice import SnowcapLattice
from repro.views.view import MaterializedView
from repro.xmldom.parser import parse_document
from tests.conftest import chain_pattern, v2_pattern


class TestRecompute:
    def test_full_recompute_matches_materialize(self, fig12_document):
        pattern = v2_pattern()
        direct = MaterializedView.materialize(pattern, fig12_document)
        recomputed, seconds = full_recompute(pattern, fig12_document)
        assert recomputed.content() == direct.content()
        assert seconds >= 0

    def test_recompute_after_update(self, fig12_document):
        pattern = v2_pattern()
        view, _seconds = recompute_after_update(
            pattern, fig12_document, DeleteUpdate("//f")
        )
        assert view.equals_fresh_evaluation(fig12_document)

    def test_recompute_rebuilds_lattice(self, fig12_document):
        pattern = v2_pattern()
        lattice = SnowcapLattice(pattern)
        full_recompute(pattern, fig12_document, lattice)
        assert lattice.stored_tuples() > 0


class TestIVMA:
    def test_insert_equivalence_with_engine(self):
        # The same statement propagated by IVMA (node-at-a-time) and by
        # fresh evaluation must agree.
        doc = parse_document("<r><a><d/></a><a/></r>")
        pattern = chain_pattern("a", "b", "c")
        view = MaterializedView.materialize(pattern, doc)
        statement = InsertUpdate("//a", "<b><c/><c/></b>")
        pul = compute_pul(doc, statement)
        applied = apply_pul(doc, pul)
        maintainer = IVMAMaintainer(view, doc)
        maintainer.propagate_insert_nodes(applied.inserted_roots)
        assert view.equals_fresh_evaluation(doc)
        # 2 targets x 3 nodes inserted = 6 node-level calls.
        assert maintainer.calls == 6

    def test_delete_equivalence(self, fig12_document):
        pattern = v2_pattern()
        view = MaterializedView.materialize(pattern, fig12_document)
        statement = DeleteUpdate("//f")
        pul = compute_pul(fig12_document, statement)
        targets = [op.target for op in pul.deletes()]
        doomed = doomed_nodes(targets)
        maintainer = IVMAMaintainer(view, fig12_document)
        maintainer.propagate_delete_nodes(doomed)
        apply_pul(fig12_document, pul)
        assert view.equals_fresh_evaluation(fig12_document)
        assert maintainer.calls == len(doomed)

    def test_derivation_counts_maintained(self):
        from repro.pattern.tree_pattern import Pattern, PatternNode

        a = PatternNode("a", axis="desc", store_id=True)
        a.add_child(PatternNode("b", axis="desc"))
        doc = parse_document("<r><a><b/></a></r>")
        view = MaterializedView.materialize(Pattern(a), doc)
        statement = InsertUpdate("//a", "<b/><b/>")
        pul = compute_pul(doc, statement)
        applied = apply_pul(doc, pul)
        IVMAMaintainer(view, doc).propagate_insert_nodes(applied.inserted_roots)
        assert view.count(view.rows()[0]) == 3
        assert view.equals_fresh_evaluation(doc)

    def test_more_calls_than_bulk(self):
        # The structural reason for Figure 28: one statement, many calls.
        doc = parse_document("<r><a/><a/><a/></r>")
        pattern = chain_pattern("a", "b")
        view = MaterializedView.materialize(pattern, doc)
        statement = InsertUpdate(
            "//a", "<b><b/><b/><b/><b/></b>"
        )  # the 5-node tree of Section 6.6
        pul = compute_pul(doc, statement)
        applied = apply_pul(doc, pul)
        maintainer = IVMAMaintainer(view, doc)
        maintainer.propagate_insert_nodes(applied.inserted_roots)
        assert maintainer.calls == 15  # 3 targets x 5 nodes
        assert view.equals_fresh_evaluation(doc)
