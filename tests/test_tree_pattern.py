"""Tree patterns (dialect P): structure, annotations, sub-patterns."""

import pytest

from repro.pattern.tree_pattern import Pattern, PatternNode, pattern_from_spec
from tests.conftest import branch_pattern, chain_pattern


class TestConstruction:
    def test_names_unique_per_label(self):
        a = PatternNode("a", axis="desc")
        a.add_child(PatternNode("b", axis="desc"))
        a.add_child(PatternNode("b", axis="child"))
        pattern = Pattern(a)
        assert pattern.node_names() == ["a#1", "b#1", "b#2"]

    def test_preorder_nodes(self):
        pattern = branch_pattern()
        assert [n.label for n in pattern.nodes()] == ["a", "b", "c", "d"]

    def test_edges(self):
        pattern = branch_pattern()
        edges = [(p.name, c.name) for p, c in pattern.edges()]
        assert edges == [("a#1", "b#1"), ("b#1", "c#1"), ("a#1", "d#1")]

    def test_bad_axis_rejected(self):
        with pytest.raises(ValueError):
            PatternNode("a", axis="sideways")

    def test_from_spec(self):
        pattern = pattern_from_spec(
            ("a", "desc", {"id": True}, [("b", "child", {"val": True, "id": True, "pred": "5"}, [])])
        )
        b = pattern.node("b#1")
        assert b.value_pred == "5"
        assert b.store_val and b.store_id


class TestAnnotations:
    def test_return_columns_order(self):
        pattern = chain_pattern("a", "b", annotate="ID")
        pattern.node("b#1").store_val = True
        assert pattern.return_columns() == [
            ("a#1", "ID"),
            ("b#1", "ID"),
            ("b#1", "val"),
        ]

    def test_content_nodes(self):
        pattern = chain_pattern("a", "b")
        assert pattern.content_nodes() == []
        pattern.node("b#1").store_cont = True
        assert [n.name for n in pattern.content_nodes()] == ["b#1"]

    def test_validate_for_maintenance_requires_id_with_cont(self):
        pattern = chain_pattern("a", "b", annotate="")
        pattern.node("b#1").store_cont = True
        with pytest.raises(ValueError):
            pattern.validate_for_maintenance()
        pattern.node("b#1").store_id = True
        pattern.validate_for_maintenance()

    def test_with_annotations(self):
        pattern = chain_pattern("a", "b")
        variant = pattern.with_annotations({"a#1": ("ID",), "b#1": ("ID", "val", "cont")})
        assert variant.node("b#1").store_cont
        assert not variant.node("a#1").store_val
        # original untouched
        assert not pattern.node("b#1").store_cont


class TestSubpattern:
    def test_ancestor_closed_subset(self):
        pattern = branch_pattern()
        sub = pattern.subpattern(frozenset({"a#1", "b#1"}))
        assert sub.node_names() == ["a#1", "b#1"]
        assert sub.node("b#1").axis == "desc"

    def test_preserves_original_names(self):
        pattern = branch_pattern()
        sub = pattern.subpattern(frozenset({"a#1", "d#1"}))
        assert sub.node_names() == ["a#1", "d#1"]

    def test_rejects_non_closed_subset(self):
        pattern = branch_pattern()
        with pytest.raises(ValueError):
            pattern.subpattern(frozenset({"a#1", "c#1"}))

    def test_rejects_missing_root(self):
        pattern = branch_pattern()
        with pytest.raises(ValueError):
            pattern.subpattern(frozenset({"b#1", "c#1"}))

    def test_name_collision_regression(self):
        # Subset skipping the first occurrence of a repeated label must
        # keep the original names (b#2), not renumber to b#1.
        a = PatternNode("a", axis="desc")
        a.add_child(PatternNode("b", axis="desc"))
        a.add_child(PatternNode("b", axis="desc"))
        pattern = Pattern(a)
        sub = pattern.subpattern(frozenset({"a#1", "b#2"}))
        assert sub.node_names() == ["a#1", "b#2"]


class TestDisplay:
    def test_to_string_mentions_annotations_and_preds(self):
        pattern = chain_pattern("a", "b", annotate="ID")
        pattern.node("b#1").value_pred = "5"
        text = pattern.to_string()
        assert "{ID}" in text and "[val=5]" in text
