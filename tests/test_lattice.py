"""The sub-pattern lattice: Figures 6/7, snowcaps, materialization."""

import pytest

from repro.pattern.evaluate import evaluate_bindings
from repro.views.lattice import (
    SnowcapLattice,
    enumerate_snowcaps,
    enumerate_subpatterns,
    join_decompositions,
    snowcap_chain,
)
from tests.conftest import branch_pattern, chain_pattern


def names(sets):
    return sorted("".join(sorted(n.split("#")[0] for n in s)) for s in sets)


class TestEnumeration:
    def test_figure6_lattice_nodes(self):
        # Figure 6 for //a[//b//c]//d: 12 pattern-labeled nodes.
        pattern = branch_pattern()
        subsets = enumerate_subpatterns(pattern)
        assert names(subsets) == sorted(
            ["a", "b", "c", "d", "ab", "ac", "ad", "bc", "abc", "abd", "acd", "abcd"]
        )

    def test_cd_is_not_a_lattice_node(self):
        pattern = branch_pattern()
        subsets = set(names(enumerate_subpatterns(pattern)))
        assert "cd" not in subsets
        assert "bd" not in subsets

    def test_figure6_snowcaps(self):
        # Boxed nodes of Figure 6: a, ab, ad, abc, abd (proper snowcaps).
        pattern = branch_pattern()
        caps = enumerate_snowcaps(pattern)
        assert names(caps) == sorted(["a", "ab", "ad", "abc", "abd"])

    def test_snowcaps_include_full_optionally(self):
        pattern = branch_pattern()
        caps = enumerate_snowcaps(pattern, include_full=True)
        assert "abcd" in names(caps)

    def test_figure6_abc_has_three_join_decompositions(self):
        pattern = branch_pattern()
        abc = frozenset({"a#1", "b#1", "c#1"})
        assert len(join_decompositions(pattern, abc)) == 3

    def test_chain_snowcaps_are_prefixes(self):
        pattern = chain_pattern("a", "b", "c")
        caps = enumerate_snowcaps(pattern)
        assert names(caps) == sorted(["a", "ab"])


class TestChainSelection:
    def test_default_chain_is_preorder_prefixes(self):
        pattern = branch_pattern()
        chain = snowcap_chain(pattern)
        assert [len(s) for s in chain] == [1, 2, 3]
        assert names(chain) == sorted(["a", "ab", "abc"])

    def test_profile_peels_expected_labels_first(self):
        pattern = branch_pattern()
        chain = snowcap_chain(pattern, update_profile=["d"])
        # d is peeled first: the size-3 snowcap is abc (complement of {d}).
        assert "abc" in names(chain)
        chain_c = snowcap_chain(pattern, update_profile=["c"])
        assert "abd" in names(chain_c)

    def test_chain_is_nested(self):
        pattern = branch_pattern()
        for profile in (None, ["c"], ["d"], ["b"]):
            chain = snowcap_chain(pattern, profile)
            for small, big in zip(chain, chain[1:]):
                assert small < big


class TestMaterialization:
    def test_materialize_and_lookup(self, fig12_document):
        pattern = chain_pattern("a", "c", "b")
        lattice = SnowcapLattice(pattern)
        lattice.materialize(fig12_document)
        subset = frozenset({"a#1", "c#1"})
        stored = lattice.relation_for(subset)
        fresh = evaluate_bindings(pattern.subpattern(subset), fig12_document)
        assert stored.rows == fresh.rows
        assert lattice.stored_tuples() > 0

    def test_leaves_strategy_materializes_nothing(self, fig12_document):
        pattern = chain_pattern("a", "c", "b")
        lattice = SnowcapLattice(pattern, strategy="leaves")
        lattice.materialize(fig12_document)
        assert lattice.materialized_sets() == []
        assert lattice.relation_for(frozenset({"a#1"})) is None

    def test_apply_delete_filters_rows(self, fig12_document):
        pattern = chain_pattern("a", "c", "b")
        lattice = SnowcapLattice(pattern)
        lattice.materialize(fig12_document)
        c = fig12_document.nodes_with_label("c")[0]
        doomed = {n.id for n in c.self_and_descendants()}
        removed = lattice.apply_delete(doomed)
        assert removed > 0
        for subset in lattice.materialized_sets():
            for row in lattice.relation_for(subset).rows:
                assert not any(cell.id in doomed for cell in row)

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError):
            SnowcapLattice(chain_pattern("a", "b"), strategy="everything")
