"""PINT / ET-INS / PIMT: insertion propagation (Section 3)."""

import pytest

from repro.maintenance.engine import MaintenanceEngine
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.updates.language import InsertUpdate
from repro.xmldom.parser import parse_document
from tests.conftest import chain_pattern


def engine_with(doc_text, pattern, **engine_kwargs):
    doc = parse_document(doc_text)
    engine = MaintenanceEngine(doc, **engine_kwargs)
    registered = engine.register_view(pattern, "v")
    return doc, engine, registered


class TestNewTuples:
    def test_example_3_1_insertion(self):
        # v1 = //a//b//c over a doc with an existing a; insert xml1.
        doc, engine, registered = engine_with(
            "<r><a><d/></a></r>", chain_pattern("a", "b", "c")
        )
        report = engine.apply_update(InsertUpdate("//a", "<a><b/><b><c/></b></a>"))
        view_report = report.report_for("v")
        # New embeddings: (old a, new b2, new c) and (new a, new b2, new c).
        assert view_report.derivations_added == 2
        assert registered.view.equals_fresh_evaluation(doc)

    def test_insertion_not_affecting_view(self):
        doc, engine, registered = engine_with(
            "<r><a><b><c/></b></a></r>", chain_pattern("a", "b", "c")
        )
        before = registered.view.content()
        report = engine.apply_update(InsertUpdate("//a", "<d/>"))
        assert report.report_for("v").derivations_added == 0
        assert registered.view.content() == before

    def test_derivation_count_increases_for_existing_tuple(self):
        # //a{ID}[//b]: inserting another b under a bumps the count.
        a = PatternNode("a", axis="desc", store_id=True)
        a.add_child(PatternNode("b", axis="desc"))
        doc, engine, registered = engine_with("<r><a><b/></a></r>", Pattern(a))
        row = registered.view.rows()[0]
        assert registered.view.count(row) == 1
        engine.apply_update(InsertUpdate("//a", "<b/>"))
        assert registered.view.count(row) == 2
        assert registered.view.equals_fresh_evaluation(doc)

    def test_multi_target_statement_is_bulk(self):
        doc, engine, registered = engine_with(
            "<r><a/><a/><a/></r>", chain_pattern("a", "b")
        )
        report = engine.apply_update(InsertUpdate("//a", "<b/>"))
        assert report.pul_size == 3
        assert report.report_for("v").derivations_added == 3
        assert registered.view.equals_fresh_evaluation(doc)

    def test_value_predicate_on_inserted_data(self):
        # Example 3.5: view //a[val=5]//b, inserted a has value 3.
        pattern = chain_pattern("a", "b")
        pattern.node("a#1").value_pred = "5"
        doc, engine, registered = engine_with("<r><x/></r>", pattern)
        report = engine.apply_update(InsertUpdate("//x", "<a>3<b/><b/></a>"))
        assert report.report_for("v").derivations_added == 0
        assert report.report_for("v").terms_surviving == 0
        assert registered.view.equals_fresh_evaluation(doc)

    def test_pruning_reported(self):
        doc, engine, registered = engine_with(
            "<r><a><d/></a></r>", chain_pattern("a", "b", "c")
        )
        report = engine.apply_update(InsertUpdate("//a", "<b><c/></b>"))
        view_report = report.report_for("v")
        assert view_report.terms_developed == 3
        assert view_report.terms_surviving == 1  # Example 3.7
        assert registered.view.equals_fresh_evaluation(doc)

    def test_pruning_disabled_still_correct(self):
        doc, engine, registered = engine_with(
            "<r><a><d/></a></r>",
            chain_pattern("a", "b", "c"),
            use_data_pruning=False,
            use_id_pruning=False,
        )
        report = engine.apply_update(InsertUpdate("//a", "<b><c/></b>"))
        assert report.report_for("v").terms_surviving == 3
        assert registered.view.equals_fresh_evaluation(doc)


class TestModifiedTuples:
    def test_example_3_14_content_update(self):
        # View /a/b//c{cont}; insertion under an existing c changes the
        # stored content without adding tuples.
        pattern = chain_pattern("a", "b", "c")
        pattern.root.axis = "child"
        node = pattern.node("c#1")
        node.store_val = True
        node.store_cont = True
        doc, engine, registered = engine_with(
            "<a><b><d><c>old</c></d></b></a>", pattern
        )
        report = engine.apply_update(
            InsertUpdate("//d/c", "<extra>some value</extra>")
        )
        view_report = report.report_for("v")
        assert view_report.derivations_added == 0
        assert view_report.tuples_modified == 1
        ((row, _count),) = registered.view.content()
        assert "some value" in row[-1]  # cont column refreshed
        assert registered.view.equals_fresh_evaluation(doc)

    def test_val_of_ancestor_refreshes(self):
        pattern = chain_pattern("a", annotate="ID")
        pattern.node("a#1").store_val = True
        doc, engine, registered = engine_with("<r><a>x</a></r>", pattern)
        engine.apply_update(InsertUpdate("//a", "<t>y</t>"))
        ((row, _),) = registered.view.content()
        assert row[1] == "xy"
        assert registered.view.equals_fresh_evaluation(doc)

    def test_unrelated_insert_modifies_nothing(self):
        pattern = chain_pattern("a", annotate="ID")
        pattern.node("a#1").store_cont = True
        doc, engine, registered = engine_with("<r><a>x</a><z/></r>", pattern)
        report = engine.apply_update(InsertUpdate("//z", "<t>y</t>"))
        assert report.report_for("v").tuples_modified == 0
        assert registered.view.equals_fresh_evaluation(doc)


class TestPredicateFlipFallback:
    def test_insert_flipping_a_sigma_predicate_recomputes(self):
        # The terms cannot express an existing node newly satisfying
        # [val=xy]; the engine must detect and recompute (engine note).
        pattern = chain_pattern("a", "b")
        pattern.node("a#1").value_pred = "xy"
        doc, engine, registered = engine_with("<r><a>x<b/></a></r>", pattern)
        assert len(registered.view) == 0
        report = engine.apply_update(InsertUpdate("//a", "<t>y</t>"))
        assert report.report_for("v").predicate_fallback
        assert len(registered.view) == 1
        assert registered.view.equals_fresh_evaluation(doc)
