"""σ-flip repair: adversarial churn equivalence and repair-path scoping.

The tentpole invariant: on any update stream, the repair engine's
extents *and* snowcap lattices are byte-identical to what the
historical whole-view recompute fallback produced -- serial, sharded
and under a resident :class:`~repro.sharding.session.ShardSession`.
The streams come from :func:`repro.workloads.churn.churn_batches`,
which is built to hit the old fallback triggers (σ-value rewrites,
flip round-trips, dirty removed subtrees).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.maintenance.engine import BatchEngine
from repro.sharding import ShardSession
from repro.updates.language import UpdateBatch
from repro.workloads.churn import churn_batches
from repro.workloads.queries import view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document

VIEWS = ("Q1", "Q2", "Q3", "Q4", "Q17")


def _register(engine, views=VIEWS):
    return {name: engine.register_view(view_pattern(name), name) for name in views}


def _lattice_id_rows(registered):
    """Materialized lattice content as sorted binding-ID rows."""
    out = {}
    for subset in registered.lattice.materialized_sets():
        relation = registered.lattice.relation_for(subset)
        out[subset] = sorted(
            tuple(cell.id for cell in row) for row in relation.rows
        )
    return out


def _assert_engines_agree(repair_views, forced_views, context):
    for name in repair_views:
        assert (
            repair_views[name].view.content() == forced_views[name].view.content()
        ), (context, name)
        assert _lattice_id_rows(repair_views[name]) == _lattice_id_rows(
            forced_views[name]
        ), (context, name)


class TestChurnEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        flip_gap=st.integers(min_value=1, max_value=3),
        dirty_every=st.integers(min_value=0, max_value=3),
    )
    def test_repair_matches_forced_recompute(self, seed, flip_gap, dirty_every):
        batches = churn_batches(
            generate_document(scale=1),
            6,
            batch_size=5,
            seed=seed,
            flip_gap=flip_gap,
            dirty_every=dirty_every,
        )
        repair_doc = generate_document(scale=1)
        forced_doc = generate_document(scale=1)
        repair = BatchEngine(repair_doc)
        forced = BatchEngine(forced_doc, sigma_repair=False)
        repair_views = _register(repair)
        forced_views = _register(forced)
        repaired = 0
        for index, batch in enumerate(batches):
            repair_report = repair.apply(list(batch))
            forced.apply(list(batch))
            assert repair_report.fallbacks == {}, index
            repaired += sum(
                entry.get("sigma_flips", 0)
                for entry in repair_report.repairs.values()
            )
            _assert_engines_agree(repair_views, forced_views, index)
            for name in VIEWS:
                assert repair_views[name].view.equals_fresh_evaluation(
                    repair_doc
                ), (index, name)
        # The generator must actually exercise the repair path.
        assert repaired > 0

    def test_repair_matches_under_shard_session(self):
        batches = churn_batches(generate_document(scale=1), 6, seed=11)
        session_doc = generate_document(scale=1)
        forced_doc = generate_document(scale=1)
        session_engine = BatchEngine(session_doc)
        forced = BatchEngine(forced_doc, sigma_repair=False)
        session_views = _register(session_engine)
        forced_views = _register(forced)
        with ShardSession(session_engine, workers=2) as session:
            for index, batch in enumerate(batches):
                report = session.apply_batch(list(batch))
                forced.apply(list(batch))
                assert report.fallbacks == {}, index
                for name in VIEWS:
                    assert (
                        session_views[name].view.content()
                        == forced_views[name].view.content()
                    ), (index, name)
        # close() re-materialized the owner lattices; full agreement now.
        _assert_engines_agree(session_views, forced_views, "closed")

    def test_sharded_workers_agree_with_serial_repair(self):
        batches = churn_batches(generate_document(scale=1), 5, seed=7)
        serial_doc = generate_document(scale=1)
        sharded_doc = generate_document(scale=1)
        serial = BatchEngine(serial_doc)
        sharded = BatchEngine(sharded_doc, workers=2)
        serial_views = _register(serial)
        sharded_views = _register(sharded)
        for index, batch in enumerate(batches):
            serial.apply(list(batch))
            report = sharded.apply(list(batch))
            assert report.fallbacks == {}, index
            _assert_engines_agree(serial_views, sharded_views, index)


class TestRepairPathScoping:
    def test_insert_only_batches_never_enter_repair(self):
        # Structurally clean insert streams must not pay for snapshots,
        # repairs or fallbacks -- the fast path stays the fast path.
        document = generate_document(scale=1)
        engine = BatchEngine(document)
        _register(engine)
        stream = statement_stream(document, 12, seed=3, insert_ratio=1.0)
        for start in range(0, len(stream), 4):
            report = engine.apply(UpdateBatch(stream[start : start + 4]))
            assert report.repairs == {}
            assert report.fallbacks == {}
            assert report.dirty_restored == 0

    def test_flip_bearing_batch_repairs_without_fallback(self):
        document = generate_document(scale=1)
        engine = BatchEngine(document)
        views = _register(engine)
        first, second = churn_batches(
            document, 2, batch_size=2, seed=0, flip_gap=1, dirty_every=0
        )
        report = engine.apply(list(first))
        assert report.fallbacks == {}
        assert any(
            entry.get("evicted", 0) for entry in report.repairs.values()
        )
        report = engine.apply(list(second))
        assert report.fallbacks == {}
        assert any(
            entry.get("admitted", 0) for entry in report.repairs.values()
        )
        for name in VIEWS:
            assert views[name].view.equals_fresh_evaluation(document), name
