"""The conjunctive XQuery view dialect of Figure 3."""

import pytest

from repro.pattern.xquery import XQuerySyntaxError, parse_view


class TestParsing:
    def test_figure3_sample_view(self):
        # The sample view of Figure 3 (confs/paper/affiliation).
        view = parse_view(
            'for $p in doc("confs")//confs//paper, $a in $p/affiliation '
            "return <result><pid>{id($p)}</pid><aid>{id($a)}</aid>"
            "<acont>{$a}</acont></result>"
        )
        pattern = view.pattern
        assert [n.label for n in pattern.nodes()] == ["confs", "paper", "affiliation"]
        paper = pattern.node("paper#1")
        affiliation = pattern.node("affiliation#1")
        assert paper.store_id
        assert affiliation.store_id and affiliation.store_cont
        assert view.uri == "confs"
        assert view.result_label == "result"
        assert [(item.node_name, item.kind) for item in view.items] == [
            ("paper#1", "ID"),
            ("affiliation#1", "ID"),
            ("affiliation#1", "cont"),
        ]

    def test_let_clause_sets_uri(self):
        view = parse_view(
            'let $c := doc("auction.xml") return for $p in $c/site/people '
            "return <r><x>{id($p)}</x></r>"
        )
        assert view.uri == "auction.xml"
        assert view.pattern.root.label == "site"

    def test_relative_variable_chains(self):
        view = parse_view(
            'for $a in doc("d")/x, $b in $a/y, $c in $b//z '
            "return <r><i>{id($c)}</i></r>"
        )
        z = view.pattern.node("z#1")
        assert z.axis == "desc"
        assert z.parent.label == "y"

    def test_where_string_equality(self):
        view = parse_view(
            'for $a in doc("d")/x, $b in $a/y where string($b) = "5" '
            "return <r><i>{id($a)}</i></r>"
        )
        assert view.pattern.node("y#1").value_pred == "5"

    def test_where_path_comparison_grafts_branch(self):
        view = parse_view(
            'for $a in doc("d")/x where $a/y/@k = "v" return <r><i>{id($a)}</i></r>'
        )
        assert view.pattern.node("@k#1").value_pred == "v"

    def test_where_existence(self):
        view = parse_view(
            'for $a in doc("d")/x where $a/y return <r><i>{id($a)}</i></r>'
        )
        assert "y#1" in view.pattern.node_names()

    def test_bare_return_list(self):
        view = parse_view(
            'for $i in doc("d")/x/item return $i/name/text(), $i/description'
        )
        name = view.pattern.node("name#1")
        description = view.pattern.node("description#1")
        assert name.store_val and name.store_id
        assert description.store_cont and description.store_id

    def test_string_return_implies_id(self):
        view = parse_view(
            'for $a in doc("d")/x return <r><v>{string($a)}</v></r>'
        )
        node = view.pattern.node("x#1")
        assert node.store_val and node.store_id

    def test_predicate_in_for_path(self):
        view = parse_view(
            'for $p in doc("d")/site/people/person[@id] '
            "return <r><n>{id($p)}</n></r>"
        )
        assert "@id#1" in view.pattern.node_names()


class TestErrors:
    def test_missing_for(self):
        with pytest.raises(XQuerySyntaxError):
            parse_view('let $c := doc("d") return <r/>')

    def test_missing_return(self):
        with pytest.raises(XQuerySyntaxError):
            parse_view('for $a in doc("d")/x where string($a) = "1"')

    def test_unknown_variable(self):
        with pytest.raises(XQuerySyntaxError):
            parse_view('for $a in $b/x return <r><i>{id($a)}</i></r>')

    def test_unsupported_where(self):
        with pytest.raises(XQuerySyntaxError):
            parse_view(
                'for $a in doc("d")/x where contains($a, "y") '
                "return <r><i>{id($a)}</i></r>"
            )
