"""Unit tests for the hot-path indexing layer (repro.xmldom.index).

The invariants under test:

* LabelIndex rows stay document-ordered under interleaved add/remove
  and equal a brute-force sorted rebuild;
* add_bulk leaves labels that received no nodes untouched;
* ValueIndex lookups (Document.nodes_with_value) always equal the
  brute-force σ-constant scan, across inserts, deletes and text-driven
  val changes;
* element val/cont memoization is invalidated precisely along the
  ancestor chain of every subtree change;
* OrderedTupleStore.items() scans lazily while snapshot() is immune to
  subsequent mutation.
"""

import random

import pytest

from repro.views.store import OrderedTupleStore
from repro.xmldom.index import LabelIndex
from repro.xmldom.model import fresh_val, set_hot_path_caches
from repro.xmldom.parser import parse_document
from repro.xmldom.serializer import serialize_fragment


class _FakeNode:
    __slots__ = ("label", "id")

    def __init__(self, label, key):
        self.label = label
        self.id = key


class TestLabelIndex:
    def test_random_add_remove_matches_sorted_rebuild(self):
        rng = random.Random(7)
        index = LabelIndex()
        live = []
        for step in range(400):
            if live and rng.random() < 0.4:
                node = live.pop(rng.randrange(len(live)))
                index.remove(node)
            else:
                node = _FakeNode(rng.choice("abc"), (rng.random(), step))
                live.append(node)
                index.add(node)
            for label in "abc":
                expected = sorted(
                    (n for n in live if n.label == label), key=lambda n: n.id
                )
                assert index.nodes(label) == expected

    def test_remove_absent_node_is_noop(self):
        index = LabelIndex()
        index.add(_FakeNode("a", 1))
        index.remove(_FakeNode("a", 2))
        index.remove(_FakeNode("z", 1))
        assert len(index.nodes("a")) == 1

    def test_add_bulk_sorts_only_touched_labels(self):
        index = LabelIndex()
        index.add_bulk([_FakeNode("a", 2), _FakeNode("a", 1), _FakeNode("b", 5)])
        assert [n.id for n in index.nodes("a")] == [1, 2]
        untouched_row = index.nodes("b")
        index.add_bulk([_FakeNode("a", 0)])
        assert [n.id for n in index.nodes("a")] == [0, 1, 2]
        # The 'b' row was not rebuilt or re-sorted.
        assert index.nodes("b") is untouched_row
        # Incremental adds still land correctly after a bulk load.
        index.add(_FakeNode("b", 3))
        assert [n.id for n in index.nodes("b")] == [3, 5]

    def test_copy_label_is_detached(self):
        index = LabelIndex()
        node = _FakeNode("a", 1)
        index.add(node)
        copied = index.copy_label("a")
        index.remove(node)
        assert copied == [node]
        assert index.nodes("a") == []


def _brute_force_sigma(document, label, constant):
    return [n for n in document.nodes_with_label(label) if fresh_val(n) == constant]


class TestValueIndex:
    def test_lookup_equals_scan_and_tracks_updates(self):
        doc = parse_document("<r><a>x</a><a>y</a><b><a>x</a></b></r>")
        assert doc.nodes_with_value("a", "x") == _brute_force_sigma(doc, "a", "x")
        # Insert another matching subtree: the index must see it.
        b = doc.nodes_with_label("b")[0]
        doc.insert_subtree(b, parse_document("<a>x</a>").root)
        assert doc.nodes_with_value("a", "x") == _brute_force_sigma(doc, "a", "x")
        # Delete one: gone from the index.
        doc.delete_subtree(doc.nodes_with_label("a")[0])
        assert doc.nodes_with_value("a", "x") == _brute_force_sigma(doc, "a", "x")

    def test_text_insert_rebuckets_ancestors(self):
        doc = parse_document("<r><a>x</a></r>")
        a = doc.nodes_with_label("a")[0]
        assert [n.id for n in doc.nodes_with_value("a", "x")] == [a.id]
        # Appending text under <a> flips its val from "x" to "xy".
        doc.insert_subtree(a, parse_document("<w>y</w>").root.children[0])
        assert doc.nodes_with_value("a", "x") == []
        assert [n.id for n in doc.nodes_with_value("a", "xy")] == [a.id]

    def test_empty_string_values_are_indexed(self):
        doc = parse_document("<r><a/><a>x</a></r>")
        empties = doc.nodes_with_value("a", "")
        assert [fresh_val(n) for n in empties] == [""]

    def test_lookup_results_are_document_ordered_copies(self):
        doc = parse_document("<r><a>x</a><a>x</a><a>x</a></r>")
        first = doc.nodes_with_value("a", "x")
        assert first == sorted(first, key=lambda n: n.id)
        first.clear()  # mutating the returned list must not corrupt the index
        assert len(doc.nodes_with_value("a", "x")) == 3

    def test_random_update_sequences(self):
        rng = random.Random(20110322)
        doc = parse_document(
            "<r>" + "".join("<a>%s</a>" % rng.choice("xy") for _ in range(8)) + "</r>"
        )
        for step in range(60):
            labels = list(doc.labels())
            if rng.random() < 0.5:
                candidates = [
                    n
                    for n in doc.root.self_and_descendants()
                    if n is not doc.root and n.kind == "element"
                ]
                if candidates:
                    doc.delete_subtree(rng.choice(candidates))
            else:
                parents = [
                    n
                    for n in doc.root.self_and_descendants()
                    if n.kind == "element"
                ]
                snippet = "<a>%s</a>" % rng.choice(("x", "y", "", "<a>x</a>"))
                doc.insert_subtree(rng.choice(parents), parse_document(snippet).root)
            for constant in ("x", "y", "xx", ""):
                assert doc.nodes_with_value("a", constant) == _brute_force_sigma(
                    doc, "a", constant
                ), (step, constant)


def _brute_force_wildcard(document, constant):
    return [
        node
        for node in sorted(document.all_elements(), key=lambda n: n.id)
        if fresh_val(node) == constant
    ]


class TestWildcardValueIndex:
    """``nodes_with_value("*", c)``: the all-labels entry for σ nodes
    labeled ``*`` (no more ``all_elements()`` scans per lookup)."""

    def test_lookup_equals_scan_across_labels(self):
        doc = parse_document("<r><a>x</a><b>x</b><c><d>x</d>y</c></r>")
        assert doc.nodes_with_value("*", "x") == _brute_force_wildcard(doc, "x")
        assert doc.nodes_with_value("*", "y") == _brute_force_wildcard(doc, "y")

    def test_tracks_inserts_deletes_and_val_changes(self):
        rng = random.Random(20260729)
        doc = parse_document("<r><a>x</a><b>y</b><c><a>x</a></c></r>")
        doc.nodes_with_value("*", "x")  # build the lazy entry up front
        for step in range(40):
            if rng.random() < 0.4:
                candidates = [
                    n
                    for n in doc.root.self_and_descendants()
                    if n is not doc.root and n.kind == "element"
                ]
                if candidates:
                    doc.delete_subtree(rng.choice(candidates))
            else:
                parents = [
                    n for n in doc.root.self_and_descendants() if n.kind == "element"
                ]
                snippet = rng.choice(
                    ("<a>x</a>", "<b>y</b>", "<e/>", "<d><a>x</a></d>", "<w>z</w>")
                )
                doc.insert_subtree(rng.choice(parents), parse_document(snippet).root)
            for constant in ("x", "y", "z", ""):
                assert doc.nodes_with_value("*", constant) == _brute_force_wildcard(
                    doc, constant
                ), (step, constant)

    def test_matches_uncached_path(self):
        doc = parse_document("<r><a>x</a><b>x</b></r>")
        indexed = doc.nodes_with_value("*", "x")
        previous = set_hot_path_caches(False)
        try:
            assert doc.nodes_with_value("*", "x") == indexed
        finally:
            set_hot_path_caches(previous)

    def test_wildcard_sigma_views_maintained(self):
        """End-to-end: a view with a ``*``-labeled σ node stays exact
        under maintenance (the engine resolves it via the index)."""
        from repro.maintenance.engine import MaintenanceEngine
        from repro.pattern.tree_pattern import Pattern, PatternNode
        from repro.updates.language import DeleteUpdate, InsertUpdate

        doc = parse_document("<r><a>x</a><b><c>q</c></b><d>x</d></r>")
        root = PatternNode("r", axis="desc", store_id=True)
        star = PatternNode(
            "*", axis="desc", store_id=True, store_val=True, value_pred="x"
        )
        root.add_child(star)
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(Pattern(root), "wild")
        engine.apply_update(InsertUpdate("/r/b", "<e>x</e>"))
        assert registered.view.equals_fresh_evaluation(doc)
        engine.apply_update(DeleteUpdate("//a"))
        assert registered.view.equals_fresh_evaluation(doc)


class TestValContCaches:
    def test_val_cached_and_invalidated_along_ancestors(self):
        doc = parse_document("<r><a>x<b>y</b></a><c>z</c></r>")
        root, a = doc.root, doc.nodes_with_label("a")[0]
        assert root.val == "xyz"
        b = doc.nodes_with_label("b")[0]
        doc.insert_subtree(b, parse_document("<w>q</w>").root.children[0])
        assert root.val == "xyqz"
        assert a.val == "xyq"
        assert a.val == fresh_val(a)

    def test_cont_invalidated_by_element_only_insert(self):
        doc = parse_document("<r><a>x</a></r>")
        a = doc.nodes_with_label("a")[0]
        before = a.cont
        doc.insert_subtree(a, parse_document("<e/>").root)
        assert a.cont != before
        assert a.cont == serialize_fragment(a)
        assert a.val == "x"  # element-only insert leaves val untouched

    def test_delete_invalidates_survivors(self):
        doc = parse_document("<r><a>x<b>y</b></a></r>")
        a = doc.nodes_with_label("a")[0]
        assert a.val == "xy"
        doc.delete_subtree(doc.nodes_with_label("b")[0])
        assert a.val == "x"
        assert a.cont == serialize_fragment(a)
        assert doc.root.val == "x"

    def test_toggle_disables_memoization_but_stays_correct(self):
        previous = set_hot_path_caches(False)
        try:
            doc = parse_document("<r><a>x</a></r>")
            a = doc.nodes_with_label("a")[0]
            assert a.val == "x"
            assert doc.nodes_with_value("a", "x") == [a]
            doc.insert_subtree(a, parse_document("<w>y</w>").root.children[0])
            assert a.val == "xy"
            assert doc.nodes_with_value("a", "xy") == [a]
        finally:
            set_hot_path_caches(previous)


class TestStoreScans:
    def test_items_is_lazy(self):
        store = OrderedTupleStore()
        for key in (1, 2, 3):
            store.put(key, key * 10)
        scan = store.items()
        assert not isinstance(scan, list)
        assert list(scan) == [(1, 10), (2, 20), (3, 30)]

    def test_snapshot_immune_to_updates(self):
        store = OrderedTupleStore()
        store.put(1, "a")
        frozen = store.snapshot()
        store.put(0, "z")
        store.delete(1)
        # The documented contract is a snapshot *sequence*; asserting
        # list identity would over-constrain alternate store backends.
        assert list(frozen) == [(1, "a")]
        assert list(store.items()) == [(0, "z")]

    def test_load_sorted_rejects_unsorted(self):
        store = OrderedTupleStore()
        with pytest.raises(ValueError):
            store.load_sorted([(2, "b"), (1, "a")])
