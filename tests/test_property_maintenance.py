"""The grand invariant, property-based:

for random documents, random conjunctive views and random update
statements, incremental maintenance must coincide with re-evaluating
the view on the updated document -- tuples *and* derivation counts --
and the materialized snowcaps must equal their fresh evaluations.

The hot-path indexing layer adds two more invariants: memoized
``val``/``cont`` always equal fresh recomputation after arbitrary
insert/delete sequences, and maintenance results are byte-identical
with the indexes on and off.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.maintenance.engine import MaintenanceEngine
from repro.pattern.evaluate import evaluate_bindings
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.updates.language import DeleteUpdate, InsertUpdate
from repro.updates.pul import apply_pul, compute_pul
from repro.xmldom.model import fresh_val, set_hot_path_caches
from repro.xmldom.parser import parse_document
from repro.xmldom.serializer import serialize_fragment

_LABELS = "abcd"


def _random_tree_text(rng, depth=0):
    label = rng.choice(_LABELS)
    inner = ""
    if depth < 3:
        inner = "".join(
            _random_tree_text(rng, depth + 1) for _ in range(rng.randint(0, 3))
        )
    if not inner and rng.random() < 0.3:
        inner = rng.choice(("x", "y"))
    return "<%s>%s</%s>" % (label, inner, label)


def _random_document(rng):
    body = "".join(_random_tree_text(rng) for _ in range(rng.randint(1, 3)))
    return parse_document("<r>%s</r>" % body)


def _random_view(rng):
    root = PatternNode(rng.choice(_LABELS + "r"), axis="desc", store_id=True)
    nodes = [root]
    for _ in range(rng.randint(1, 3)):
        parent = rng.choice(nodes)
        child = PatternNode(
            rng.choice(_LABELS),
            axis=rng.choice(("child", "desc")),
            store_id=True,
        )
        parent.add_child(child)
        nodes.append(child)
    target = rng.choice(nodes)
    if rng.random() < 0.5:
        target.store_val = True
    if rng.random() < 0.3:
        target.store_cont = True
    return Pattern(root)


def _random_update(rng):
    label = rng.choice(_LABELS)
    axis = rng.choice(("//", "//", "/r/"))
    path = "%s%s" % (axis, label)
    if rng.random() < 0.5:
        return DeleteUpdate(path)
    fragment = _random_tree_text(rng, depth=2 - min(2, rng.randint(0, 2)))
    return InsertUpdate(path, fragment)


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_maintenance_equals_recomputation(seed):
    rng = random.Random(seed)
    doc = _random_document(rng)
    engine = MaintenanceEngine(doc)
    registered = engine.register_view(_random_view(rng), "v",
                                      strategy=rng.choice(("snowcaps", "leaves")))
    for _ in range(rng.randint(1, 3)):
        update = _random_update(rng)
        targets = update.target.evaluate(doc)
        if update.kind == "insert" and any(
            not hasattr(t, "children") for t in targets
        ):
            continue  # skip inserts into attribute/text targets
        engine.apply_update(update)
        assert registered.view.equals_fresh_evaluation(doc), (
            seed,
            update,
            registered.view.diff_against_fresh(doc),
        )
    for subset in registered.lattice.materialized_sets():
        stored = registered.lattice.relation_for(subset)
        fresh = evaluate_bindings(registered.pattern.subpattern(subset), doc)
        assert sorted(tuple(c.id for c in r) for r in stored.rows) == sorted(
            tuple(c.id for c in r) for r in fresh.rows
        ), (seed, sorted(subset))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_optimized_sequences_equal_plain(seed):
    """Reduction preserves snapshot (pre-resolved PUL) semantics.

    Section 5 operates on pending update lists, i.e., targets are
    resolved before any operation runs; both sides of the comparison
    therefore resolve every statement's targets on the original
    document, and the optimized side additionally reduces.

    View contents are compared with IDs canonicalized to preorder
    positions: dynamic Dewey *ordinals* are assignment-history
    dependent (an insert next to a later-cancelled sibling picks a
    different gap), so the reduced sequence is only required to
    produce the same document and the same view modulo ordinal
    encoding -- not bit-identical IDs.
    """
    from repro.updates.language import ResolvedDeleteUpdate, ResolvedInsertUpdate
    from repro.xmldom.dewey import DeweyID

    rng = random.Random(seed)
    text = serialize_fragment(_random_document(rng).root)
    updates = [_random_update(rng) for _ in range(rng.randint(2, 4))]
    view = _random_view(rng)

    def resolve(doc):
        resolved = []
        for update in updates:
            pul = compute_pul(doc, update)
            if update.kind == "insert":
                ids = [op.target.id for op in pul.inserts()]
                if ids:
                    resolved.append(
                        ResolvedInsertUpdate(ids, update.forest, name=update.name)
                    )
            else:
                ids = [op.target.id for op in pul.deletes()]
                if ids:
                    resolved.append(ResolvedDeleteUpdate(ids, name=update.name))
        return resolved

    def run(optimize):
        doc = parse_document(text)
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(view, "v")
        engine.apply_sequence(resolve(doc), optimize=optimize)
        assert registered.view.equals_fresh_evaluation(doc), (seed, optimize)
        position = {
            node.id: index
            for index, node in enumerate(doc.root.self_and_descendants())
        }
        content = [
            (
                tuple(
                    position[cell] if isinstance(cell, DeweyID) else cell
                    for cell in row
                ),
                count,
            )
            for row, count in registered.view.content()
        ]
        return content, serialize_fragment(doc.root)

    plain_content, plain_doc = run(False)
    opt_content, opt_doc = run(True)
    assert plain_doc == opt_doc
    assert plain_content == opt_content


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_value_caches_equal_fresh_recomputation(seed):
    """Memoized val/cont match cache-free recomputation after arbitrary
    insert/delete sequences, with caches warmed between updates so any
    missed invalidation would surface as a stale read."""
    rng = random.Random(seed)
    doc = _random_document(rng)
    for _ in range(rng.randint(2, 5)):
        # Warm a random sample of caches (and the value index).
        for node in doc.root.self_and_descendants():
            if rng.random() < 0.5:
                node.val
            if rng.random() < 0.2 and node.kind == "element":
                node.cont
        for label in ("a", "b"):
            doc.nodes_with_value(label, rng.choice(("x", "y", "")))
        update = _random_update(rng)
        targets = update.target.evaluate(doc)
        if update.kind == "insert" and any(
            not hasattr(t, "children") for t in targets
        ):
            continue
        apply_pul(doc, compute_pul(doc, update))
        for node in doc.root.self_and_descendants():
            assert node.val == fresh_val(node), (seed, update, node)
            if node.kind == "element":
                assert node.cont == serialize_fragment(node), (seed, update, node)
        for label in ("a", "b", "c", "d"):
            for constant in ("x", "y", "xy", ""):
                expected = [
                    n
                    for n in doc.nodes_with_label(label)
                    if fresh_val(n) == constant
                ]
                assert doc.nodes_with_value(label, constant) == expected, (
                    seed,
                    update,
                    label,
                    constant,
                )


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_maintenance_identical_with_and_without_indexes(seed):
    """The indexed hot path is an optimization, not a semantics change:
    maintained extents and the updated document are byte-identical with
    the caches/value-index on and off."""

    def run(enabled):
        previous = set_hot_path_caches(enabled)
        try:
            rng = random.Random(seed)
            doc = _random_document(rng)
            engine = MaintenanceEngine(doc)
            registered = engine.register_view(_random_view(rng), "v")
            for _ in range(rng.randint(1, 3)):
                update = _random_update(rng)
                targets = update.target.evaluate(doc)
                if update.kind == "insert" and any(
                    not hasattr(t, "children") for t in targets
                ):
                    continue
                engine.apply_update(update)
            assert registered.view.equals_fresh_evaluation(doc), (seed, enabled)
            return registered.view.content(), serialize_fragment(doc.root)
        finally:
            set_hot_path_caches(previous)

    assert run(True) == run(False)