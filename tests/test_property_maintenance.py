"""The grand invariant, property-based:

for random documents, random conjunctive views and random update
statements, incremental maintenance must coincide with re-evaluating
the view on the updated document -- tuples *and* derivation counts --
and the materialized snowcaps must equal their fresh evaluations.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.maintenance.engine import MaintenanceEngine
from repro.pattern.evaluate import evaluate_bindings
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.updates.language import DeleteUpdate, InsertUpdate
from repro.xmldom.parser import parse_document
from repro.xmldom.serializer import serialize_fragment

_LABELS = "abcd"


def _random_tree_text(rng, depth=0):
    label = rng.choice(_LABELS)
    inner = ""
    if depth < 3:
        inner = "".join(
            _random_tree_text(rng, depth + 1) for _ in range(rng.randint(0, 3))
        )
    if not inner and rng.random() < 0.3:
        inner = rng.choice(("x", "y"))
    return "<%s>%s</%s>" % (label, inner, label)


def _random_document(rng):
    body = "".join(_random_tree_text(rng) for _ in range(rng.randint(1, 3)))
    return parse_document("<r>%s</r>" % body)


def _random_view(rng):
    root = PatternNode(rng.choice(_LABELS + "r"), axis="desc", store_id=True)
    nodes = [root]
    for _ in range(rng.randint(1, 3)):
        parent = rng.choice(nodes)
        child = PatternNode(
            rng.choice(_LABELS),
            axis=rng.choice(("child", "desc")),
            store_id=True,
        )
        parent.add_child(child)
        nodes.append(child)
    target = rng.choice(nodes)
    if rng.random() < 0.5:
        target.store_val = True
    if rng.random() < 0.3:
        target.store_cont = True
    return Pattern(root)


def _random_update(rng):
    label = rng.choice(_LABELS)
    axis = rng.choice(("//", "//", "/r/"))
    path = "%s%s" % (axis, label)
    if rng.random() < 0.5:
        return DeleteUpdate(path)
    fragment = _random_tree_text(rng, depth=2 - min(2, rng.randint(0, 2)))
    return InsertUpdate(path, fragment)


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_maintenance_equals_recomputation(seed):
    rng = random.Random(seed)
    doc = _random_document(rng)
    engine = MaintenanceEngine(doc)
    registered = engine.register_view(_random_view(rng), "v",
                                      strategy=rng.choice(("snowcaps", "leaves")))
    for _ in range(rng.randint(1, 3)):
        update = _random_update(rng)
        targets = update.target.evaluate(doc)
        if update.kind == "insert" and any(
            not hasattr(t, "children") for t in targets
        ):
            continue  # skip inserts into attribute/text targets
        engine.apply_update(update)
        assert registered.view.equals_fresh_evaluation(doc), (
            seed,
            update,
            registered.view.diff_against_fresh(doc),
        )
    for subset in registered.lattice.materialized_sets():
        stored = registered.lattice.relation_for(subset)
        fresh = evaluate_bindings(registered.pattern.subpattern(subset), doc)
        assert sorted(tuple(c.id for c in r) for r in stored.rows) == sorted(
            tuple(c.id for c in r) for r in fresh.rows
        ), (seed, sorted(subset))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_optimized_sequences_equal_plain(seed):
    """Reduction preserves snapshot (pre-resolved PUL) semantics.

    Section 5 operates on pending update lists, i.e., targets are
    resolved before any operation runs; both sides of the comparison
    therefore resolve every statement's targets on the original
    document, and the optimized side additionally reduces.
    """
    from repro.updates.language import ResolvedDeleteUpdate, ResolvedInsertUpdate
    from repro.updates.pul import compute_pul

    rng = random.Random(seed)
    text = serialize_fragment(_random_document(rng).root)
    updates = [_random_update(rng) for _ in range(rng.randint(2, 4))]
    view = _random_view(rng)

    def resolve(doc):
        resolved = []
        for update in updates:
            pul = compute_pul(doc, update)
            if update.kind == "insert":
                ids = [op.target.id for op in pul.inserts()]
                if ids:
                    resolved.append(
                        ResolvedInsertUpdate(ids, update.forest, name=update.name)
                    )
            else:
                ids = [op.target.id for op in pul.deletes()]
                if ids:
                    resolved.append(ResolvedDeleteUpdate(ids, name=update.name))
        return resolved

    def run(optimize):
        doc = parse_document(text)
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(view, "v")
        engine.apply_sequence(resolve(doc), optimize=optimize)
        assert registered.view.equals_fresh_evaluation(doc), (seed, optimize)
        return registered.view.content(), serialize_fragment(doc.root)

    plain_content, plain_doc = run(False)
    opt_content, opt_doc = run(True)
    assert plain_doc == opt_doc
    assert plain_content == opt_content