"""Crash-injection durability tests: the matrix the paper's engine must pass.

Every cell kills a workload child (SIGKILL, no cleanup) at a named
crash point, recovers the database in this process, finishes the
workload, and demands the result be *digest-identical* to an
uninterrupted in-memory serial run -- extents and snowcap lattices
both.  The deterministic matrix covers every crash point x engine mode;
the Hypothesis property re-rolls the workload seed and the crash cell.
"""

import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from harness import crashkit
from repro.obs import Observability
from repro.storage.crashpoints import CRASH_POINTS

#: (point, nth occurrence) -- the 2nd hit lands mid-stream, so there is
#: both committed history to adopt and remaining workload to re-apply.
CRASH_CELLS = [(point, 2) for point in CRASH_POINTS]


@pytest.fixture(scope="module")
def reference():
    return crashkit.reference_digests()


_reference_cache = {}


def _reference(seed):
    if seed not in _reference_cache:
        _reference_cache[seed] = crashkit.reference_digests(seed)
    return _reference_cache[seed]


def _assert_recovered(db_path, expected, seed=crashkit.SEED):
    """Recover, finish the workload, and check every durability claim."""
    obs = Observability()
    engine, report = crashkit.recover_and_finish(db_path, obs=obs, seed=seed)
    assert (
        crashkit.extent_digest(engine.views),
        crashkit.lattice_digest(engine.views),
    ) == expected
    # The commit protocol bounds the WAL tail to a single batch, and the
    # metric must agree with the report (satellite: prove via telemetry
    # that recovery replays instead of rematerializing).
    assert report.replayed_batches <= 1
    assert (
        obs.metrics.counter("repro_recovery_replayed_batches").value()
        == report.replayed_batches
    )
    assert report.durable_version + report.replayed_batches == engine.backend.version or (
        engine.backend.version == crashkit.BATCHES
    )
    assert sorted(report.views) == sorted(crashkit.VIEWS)
    return engine, report


class TestCrashMatrix:
    @pytest.mark.parametrize("point,nth", CRASH_CELLS)
    @pytest.mark.parametrize("mode", crashkit.MODES)
    def test_recovery_after_crash(self, tmp_path, reference, mode, point, nth):
        db_path = str(tmp_path / "engine.db")
        status = crashkit.run_crashing_fork(db_path, mode, point, nth)
        assert crashkit.died_by_sigkill(status), (
            "workload child should die by SIGKILL at %s:%d (wait status %d)"
            % (point, nth, status)
        )
        engine, report = _assert_recovered(db_path, reference)
        if mode in ("serial", "workers"):
            # Lattice snapshots are committed with every batch in these
            # modes, so recovery adopts them verbatim -- zero
            # rematerialization when the WAL tail suffices.
            assert report.lattices_rematerialized == 0
        assert engine.backend.version == crashkit.BATCHES

    def test_session_mode_rematerializes_only_lattices(self, tmp_path, reference):
        # A ShardSession keeps owner lattices stale on purpose
        # (lattice_version lags version), so recovery re-derives the
        # lattices but still adopts every extent verbatim.
        db_path = str(tmp_path / "engine.db")
        status = crashkit.run_crashing_fork(db_path, "session", "after_commit_marker", 2)
        assert crashkit.died_by_sigkill(status)
        engine, report = _assert_recovered(db_path, reference)
        assert report.lattices_rematerialized == len(crashkit.VIEWS)
        assert report.lattice_version < report.durable_version


class TestCleanShutdown:
    def test_subprocess_completes_and_reopens_without_replay(self, tmp_path, reference):
        db_path = str(tmp_path / "engine.db")
        proc = crashkit.spawn_workload(db_path, "serial")
        assert proc.returncode == 0, proc.stderr
        assert "completed" in proc.stdout
        engine, report = _assert_recovered(db_path, reference)
        assert report.replayed_batches == 0
        assert report.truncated_bytes == 0
        assert report.torn_reason is None
        assert report.lattices_rematerialized == 0
        assert report.durable_version == crashkit.BATCHES

    def test_subprocess_crash_dies_by_sigkill(self, tmp_path, reference):
        # One real-interpreter cell (environment hook, fresh process):
        # the closest model of a production crash.
        db_path = str(tmp_path / "engine.db")
        proc = crashkit.spawn_workload(
            db_path, "serial", crash_spec="after_commit_marker:2"
        )
        assert proc.returncode == -9, (proc.returncode, proc.stderr)
        engine, report = _assert_recovered(db_path, reference)
        assert report.replayed_batches == 1


@given(
    seed=st.sampled_from([13, 29, 71]),
    mode=st.sampled_from(crashkit.MODES),
    point=st.sampled_from(CRASH_POINTS),
    nth=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=8, deadline=None)
def test_random_crash_cells_recover_identically(seed, mode, point, nth):
    """Satellite property: any (stream, crash cell, mode) recovers to
    the uninterrupted run's digests, replaying at most one batch."""
    expected = _reference(seed)
    with tempfile.TemporaryDirectory() as tmp:
        db_path = tmp + "/engine.db"
        status = crashkit.run_crashing_fork(db_path, mode, point, nth, seed=seed)
        assert crashkit.died_by_sigkill(status)
        engine, report = _assert_recovered(db_path, expected, seed=seed)
        if mode in ("serial", "workers"):
            assert report.lattices_rematerialized == 0
