"""Async apply queue semantics: ordering, flush, close, errors.

The queue's contract: statements are applied in submission order
(grouped into batches of at most ``max_batch_size``), ``flush``
returns only once everything submitted before it is applied, ``close``
drains then stops, and a failing statement poisons exactly its batch
while leaving the engine's views consistent.
"""

import time

import pytest

from repro.maintenance.engine import BatchEngine, MaintenanceEngine
from repro.maintenance.queue import ApplyQueue
from repro.updates.language import InsertUpdate
from repro.workloads.queries import view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document
from repro.xmldom.serializer import serialize_fragment


def _stream(count, seed=5, insert_ratio=0.8):
    return statement_stream(
        generate_document(scale=1), count, seed=seed, insert_ratio=insert_ratio
    )


def _fresh_engine():
    engine = BatchEngine(generate_document(scale=1))
    registered = engine.register_view(view_pattern("Q1"), "Q1")
    return engine, registered


class TestOrderingAndEquivalence:
    def test_queued_stream_matches_sequential(self):
        stream = _stream(18)
        sequential_doc = generate_document(scale=1)
        sequential = MaintenanceEngine(sequential_doc)
        sequential_view = sequential.register_view(view_pattern("Q1"), "Q1")
        for statement in stream:
            sequential.apply_update(statement)

        engine, registered = _fresh_engine()
        with ApplyQueue(engine, max_batch_size=4) as queue:
            tickets = queue.extend_async(stream)
            queue.flush()
            assert all(ticket.done() for ticket in tickets)
        assert serialize_fragment(sequential_doc.root) == serialize_fragment(
            engine.document.root
        )
        assert sequential_view.view.content() == registered.view.content()
        assert registered.view.equals_fresh_evaluation(engine.document)

    def test_batches_respect_max_size_and_order(self):
        stream = _stream(10, insert_ratio=1.0)
        engine, _ = _fresh_engine()
        with ApplyQueue(engine, max_batch_size=3) as queue:
            tickets = queue.extend_async(stream)
            queue.flush()
            reports = [ticket.result() for ticket in tickets]
        for report in reports:
            assert report.statements_applied <= 3
        # Tickets of one batch share the report; batch boundaries
        # preserve submission order.
        batch_ids = [id(report) for report in reports]
        seen = []
        for batch_id in batch_ids:
            if not seen or seen[-1] != batch_id:
                seen.append(batch_id)
        assert len(seen) == len(set(batch_ids))  # no interleaving


class TestFlushAndClose:
    def test_flush_interval_drains_without_flush(self):
        engine, registered = _fresh_engine()
        queue = ApplyQueue(engine, max_batch_size=100, flush_interval=0.01)
        try:
            ticket = queue.apply_async(_stream(1, insert_ratio=1.0)[0])
            report = ticket.result(timeout=5)
            assert report.statements_applied == 1
            assert registered.view.equals_fresh_evaluation(engine.document)
        finally:
            queue.close()

    def test_close_drains_pending(self):
        stream = _stream(8, insert_ratio=1.0)
        engine, registered = _fresh_engine()
        queue = ApplyQueue(engine, max_batch_size=4, flush_interval=5.0)
        tickets = queue.extend_async(stream)
        queue.close()
        assert all(ticket.done() for ticket in tickets)
        assert queue.pending_count == 0
        assert registered.view.equals_fresh_evaluation(engine.document)

    def test_apply_async_after_close_raises(self):
        engine, _ = _fresh_engine()
        queue = ApplyQueue(engine)
        queue.close()
        with pytest.raises(RuntimeError):
            queue.apply_async(_stream(1)[0])
        queue.close()  # idempotent

    def test_flush_timeout(self):
        engine, _ = _fresh_engine()
        with ApplyQueue(engine) as queue:
            queue.flush(timeout=5)  # nothing pending: returns at once

    def test_result_timeout(self):
        engine, _ = _fresh_engine()
        queue = ApplyQueue(engine, flush_interval=5.0, max_batch_size=100)
        try:
            ticket = queue.apply_async(_stream(1)[0])
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.01)
        finally:
            queue.close()


class TestCloseWithPendingBatches:
    def test_close_flushes_multiple_pending_batches(self):
        # max_batch_size=3 over 10 statements: close() must drain at
        # least four batches that were all still pending, resolving
        # every ticket with the report of its own batch.
        stream = _stream(10, insert_ratio=1.0)
        engine, registered = _fresh_engine()
        queue = ApplyQueue(engine, max_batch_size=3, flush_interval=10.0)
        tickets = queue.extend_async(stream)
        assert queue.pending_count == 10
        queue.close()
        assert queue.pending_count == 0
        assert queue.batches_applied >= 4
        reports = [ticket.result(timeout=5) for ticket in tickets]
        assert sum(report.statements_applied for report in set(reports)) <= 10
        assert registered.view.equals_fresh_evaluation(engine.document)

    def test_close_with_pending_poison_batch(self):
        # A poison statement sitting in the *pending* backlog at close
        # time fails exactly its batch; close still drains the rest and
        # the views stay consistent (recompute fallback).
        engine, registered = _fresh_engine()
        good_before = _stream(2, insert_ratio=1.0)
        bad = InsertUpdate("/site/people/person/@id", "<x/>", name="bad")
        good_after = _stream(2, seed=6, insert_ratio=1.0)
        queue = ApplyQueue(engine, max_batch_size=1, flush_interval=10.0)
        ok_tickets = queue.extend_async(good_before)
        poisoned = queue.apply_async(bad)
        tail_tickets = queue.extend_async(good_after)
        queue.close()
        for ticket in ok_tickets + tail_tickets:
            assert ticket.result(timeout=5) is not None
        with pytest.raises(ValueError):
            poisoned.result(timeout=5)
        assert registered.view.equals_fresh_evaluation(engine.document)

    def test_poison_batch_shares_error_across_its_tickets(self):
        # With everything in ONE batch, the failure poisons every
        # statement of the batch -- all tickets carry the same error.
        engine, registered = _fresh_engine()
        statements = _stream(2, insert_ratio=1.0) + [
            InsertUpdate("/site/people/person/@id", "<x/>", name="bad")
        ]
        queue = ApplyQueue(engine, max_batch_size=10, flush_interval=10.0)
        tickets = queue.extend_async(statements)
        queue.close()
        errors = []
        for ticket in tickets:
            with pytest.raises(ValueError):
                ticket.result(timeout=5)
            errors.append(ticket._error)
        assert len({id(error) for error in errors}) == 1
        assert registered.view.equals_fresh_evaluation(engine.document)


class TestErrorPropagation:
    def test_poison_statement_fails_its_batch_only(self):
        engine, registered = _fresh_engine()
        bad = InsertUpdate("/site/people/person/@id", "<x/>", name="bad")
        good = _stream(2, insert_ratio=1.0)
        with ApplyQueue(engine, max_batch_size=10, flush_interval=0.0) as queue:
            poisoned = queue.apply_async(bad)
            with pytest.raises(ValueError):
                poisoned.result(timeout=5)
            # The worker survives; later statements still apply.
            tickets = queue.extend_async(good)
            queue.flush()
            for ticket in tickets:
                ticket.result(timeout=5)
        assert registered.view.equals_fresh_evaluation(engine.document)

    def test_engine_requirements_validated(self):
        with pytest.raises(TypeError):
            ApplyQueue(object())
        engine, _ = _fresh_engine()
        with pytest.raises(ValueError):
            ApplyQueue(engine, max_batch_size=0)
        with pytest.raises(ValueError):
            ApplyQueue(engine, flush_interval=-1)
