"""repro-lint: rule-family fixtures, suppressions, baselines, CLI.

Two jobs: prove each rule family actually fires (on fixture files under
``tests/fixtures/analysis/``, laid out as a miniature ``repro`` tree so
package-scoped rules apply), and prove the analyzer's plumbing --
suppression comments, baseline load/diff, JSON schema, exit codes --
behaves as documented.  The capstone asserts the real source tree is
clean, which is the CI lint gate in miniature.
"""

import json
import os

import pytest

from repro.analysis import all_rules, analyze_paths, core
from repro.analysis.baseline import (
    load_baseline,
    split_against_baseline,
    write_baseline,
)
from repro.analysis.cli import main

FIXTURES = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "analysis", "repro"
)


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def findings_for(path, select=None):
    report = analyze_paths([path], select=select)
    assert not report.errors, report.errors
    return report.findings


def lines_for(path, rule):
    return sorted(f.line for f in findings_for(path) if f.rule == rule)


# -- each rule family fires on its fixture ------------------------------------


def test_det_set_iter_fixture_fires():
    assert lines_for(fixture("sharding", "det_set_iter_bad.py"), "det-set-iter") == [
        11,
        13,
        14,
        15,
    ]


def test_det_random_fixture_fires():
    assert lines_for(fixture("sharding", "det_entropy_bad.py"), "det-random") == [
        9,
        13,
        14,
    ]


def test_det_wallclock_fixture_fires():
    assert lines_for(fixture("sharding", "det_entropy_bad.py"), "det-wallclock") == [
        20,
        22,
    ]


def test_det_id_order_fixture_fires():
    assert lines_for(fixture("sharding", "det_order_bad.py"), "det-id-order") == [
        12,
        13,
        18,
        18,
    ]


def test_det_hash_order_fixture_fires():
    assert lines_for(fixture("sharding", "det_order_bad.py"), "det-hash-order") == [
        22,
        26,
    ]


def test_fork_global_write_fixture_fires():
    findings = findings_for(fixture("sharding", "fork_global_bad.py"))
    assert [f.rule for f in findings] == ["fork-worker-global-write"] * 3
    assert [f.line for f in findings] == [15, 16, 17]
    # the read-only worker and the parent-side publisher stay clean
    assert all("'_worker'" in f.message for f in findings)


def test_fork_capture_fixture_fires():
    assert lines_for(fixture("sharding", "fork_capture_bad.py"), "fork-unsafe-capture") == [
        11,
        12,
        13,
    ]


def test_fork_capture_durable_fixture_fires():
    # storage/ is in the rule's scope: sqlite connections and WAL file
    # handles are fork-hostile exactly like locks and generators.
    findings = findings_for(fixture("storage", "durable_bad.py"))
    assert [f.rule for f in findings] == ["fork-unsafe-capture"] * 2
    assert [f.line for f in findings] == [13, 14]
    assert "sqlite connection" in findings[0].message


def test_fork_capture_boundary_dunder_exempts():
    # A class that declares its boundary (__getstate__ raising) holds
    # the same resources without findings: nothing crosses silently.
    assert findings_for(fixture("storage", "durable_clean.py")) == []


def test_unit_purity_fixture_fires():
    findings = findings_for(fixture("sharding", "unit_impure_bad.py"))
    assert [f.rule for f in findings] == ["unit-impure-write"] * 3
    assert all("LeakyUnit" in f.message for f in findings)


def test_fragment_fixture_fires():
    assert lines_for(
        fixture("sharding", "fragment_bad.py"), "fragment-unpicklable-field"
    ) == [19, 23, 24]


def test_obs_clock_fixture_fires():
    findings = findings_for(fixture("obs", "clock_bad.py"))
    assert [f.rule for f in findings] == ["obs-clock"] * 2
    assert [f.line for f in findings] == [8, 9]
    # det-wallclock defers to the obs-specific rule inside repro.obs
    assert lines_for(fixture("obs", "clock_bad.py"), "det-wallclock") == []


def test_obs_export_fixture_is_clean():
    assert findings_for(fixture("obs", "export.py")) == []


def test_layering_fixture_fires():
    findings = findings_for(fixture("maintenance", "layer_bad.py"))
    assert [f.rule for f in findings] == ["layer-upward-import"] * 3
    assert [f.line for f in findings] == [9, 14, 20]


def test_clean_fixture_is_clean():
    assert findings_for(fixture("sharding", "clean_ok.py")) == []


def test_rebalance_fixture_fires_across_families():
    # A naive rebalancer trips one rule per habit the real policy
    # avoids -- its decisions could not replay from recorded timings.
    findings = findings_for(fixture("sharding", "rebalance_bad.py"))
    assert [(f.rule, f.line) for f in findings] == [
        ("det-wallclock", 14),
        ("det-hash-order", 18),
        ("det-set-iter", 24),
        ("det-random", 26),
    ]


def test_rebalance_module_is_clean_without_suppressions():
    import repro.sharding.rebalance as rebalance_module

    path = rebalance_module.__file__
    assert findings_for(path) == []
    with open(path) as handle:
        assert "repro-lint:" not in handle.read()  # zero suppressions


# -- the real tree is clean (the CI gate in miniature) ------------------------


def test_source_tree_is_clean():
    report = analyze_paths([core.default_target()])
    assert report.findings == []
    assert report.errors == []
    assert report.files_checked > 60


def test_rule_registry_covers_five_families():
    families = {rule.family for rule in all_rules()}
    assert {
        "determinism",
        "fork-safety",
        "purity",
        "picklability",
        "layering",
    } <= families


# -- suppressions -------------------------------------------------------------


def _write_module(tmp_path, relative, source):
    path = tmp_path / "repro" / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


def test_line_suppression_silences_one_rule(tmp_path):
    path = _write_module(
        tmp_path,
        "sharding/suppressed.py",
        "def f(labels):\n"
        "    touched = set(labels)\n"
        "    a = list(touched)  # repro-lint: disable=det-set-iter\n"
        "    b = list(touched)\n"
        "    return a, b\n",
    )
    report = analyze_paths([path])
    assert [f.line for f in report.findings] == [4]
    assert report.suppressed == 1


def test_family_and_star_suppressions(tmp_path):
    path = _write_module(
        tmp_path,
        "sharding/suppressed2.py",
        "import time\n"
        "def f():\n"
        "    a = time.time()  # repro-lint: disable=determinism\n"
        "    b = time.time()  # repro-lint: disable=*\n"
        "    return a, b\n",
    )
    report = analyze_paths([path])
    assert report.findings == []
    assert report.suppressed == 2


def test_file_level_suppression(tmp_path):
    path = _write_module(
        tmp_path,
        "sharding/suppressed3.py",
        "# repro-lint: disable-file=det-wallclock\n"
        "import time\n"
        "def f():\n"
        "    return time.time()\n",
    )
    report = analyze_paths([path])
    assert report.findings == []
    assert report.suppressed == 1


def test_suppression_for_other_rule_does_not_silence(tmp_path):
    path = _write_module(
        tmp_path,
        "sharding/suppressed4.py",
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro-lint: disable=det-random\n",
    )
    report = analyze_paths([path])
    assert [f.rule for f in report.findings] == ["det-wallclock"]


# -- baselines ----------------------------------------------------------------


def test_baseline_roundtrip_and_diff(tmp_path):
    path = _write_module(
        tmp_path,
        "sharding/legacy.py",
        "import time\n"
        "def f():\n"
        "    return time.time()\n",
    )
    findings = analyze_paths([path]).findings
    assert len(findings) == 1
    baseline_file = tmp_path / "baseline.json"
    assert write_baseline(str(baseline_file), findings) == 1
    fingerprints = load_baseline(str(baseline_file))
    assert fingerprints == {findings[0].fingerprint()}

    # unchanged tree: everything baselined, nothing new, nothing stale
    new, baselined, stale = split_against_baseline(findings, fingerprints)
    assert (new, len(baselined), stale) == ([], 1, set())

    # a fresh violation shows up as new (different line text -- identical
    # lines share a fingerprint by design); fixing the old one leaves it
    # stale
    with open(path, "a") as handle:
        handle.write("def g():\n    started = time.time()\n    return started\n")
    grown = analyze_paths([path]).findings
    new, baselined, stale = split_against_baseline(grown, fingerprints)
    assert len(new) == 1 and len(baselined) == 1 and stale == set()

    fixed = [f for f in grown if f.line != 3]
    new, baselined, stale = split_against_baseline(fixed, fingerprints)
    assert len(new) == 1 and baselined == [] and stale == fingerprints


def test_baseline_fingerprint_survives_line_shift(tmp_path):
    path = _write_module(
        tmp_path,
        "sharding/shifty.py",
        "import time\n"
        "def f():\n"
        "    return time.time()\n",
    )
    before = analyze_paths([path]).findings[0]
    with open(path) as handle:
        source = handle.read()
    with open(path, "w") as handle:
        handle.write("import os\n" + source)
    after = analyze_paths([path]).findings[0]
    assert after.line == before.line + 1
    assert after.fingerprint() == before.fingerprint()


def test_load_baseline_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]")
    with pytest.raises(ValueError):
        load_baseline(str(bad))


# -- CLI: JSON schema and exit codes ------------------------------------------


def test_cli_json_schema_on_fixtures(capsys):
    code = main(["--format=json", fixture("sharding", "det_set_iter_bad.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["errors"] == []
    assert payload["counts"] == {"det-set-iter": 4}
    assert payload["stale_baseline_entries"] == []
    for finding in payload["findings"]:
        assert set(finding) == {
            "rule",
            "family",
            "path",
            "line",
            "col",
            "message",
            "fingerprint",
        }
    # stable ordering: sorted by (path, line, col, rule)
    keys = [(f["path"], f["line"], f["col"], f["rule"]) for f in payload["findings"]]
    assert keys == sorted(keys)


def test_cli_exit_zero_on_clean_tree(capsys):
    assert main(["--format=json", core.default_target()]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []


def test_cli_exit_one_on_unparsable_file(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    code = main(["--format=json", str(bad)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["findings"] == []
    assert [e["rule"] for e in payload["errors"]] == ["parse-error"]


def test_cli_select_unknown_rule_is_usage_error(capsys):
    assert main(["--select=no-such-rule", FIXTURES]) == 2


def test_cli_select_runs_only_selected(capsys):
    code = main(
        ["--select=det-wallclock", "--format=json", fixture("sharding", "det_entropy_bad.py")]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert set(payload["counts"]) == {"det-wallclock"}


def test_cli_baseline_flow(tmp_path, capsys):
    target = fixture("sharding", "det_order_bad.py")
    baseline_file = str(tmp_path / "baseline.json")
    assert main(["--write-baseline", baseline_file, target]) == 0
    capsys.readouterr()
    assert main(["--baseline", baseline_file, "--format=json", target]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["baselined"] == 6


def test_cli_baseline_missing_file_is_usage_error(tmp_path, capsys):
    code = main(["--baseline", str(tmp_path / "nope.json"), FIXTURES])
    assert code == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out
