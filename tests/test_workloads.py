"""Workloads: the XMark generator, views Q*, and the update test set."""

import pytest

from repro.updates.language import DeleteUpdate, InsertUpdate
from repro.workloads.queries import VIEW_TEXTS, view_definition, view_pattern
from repro.workloads.updates import (
    UPDATE_CLASSES,
    UPDATE_TEXTS,
    VIEW_UPDATE_GROUPS,
    delete_variant,
    insert_update,
)
from repro.workloads.xmark import generate_document, generate_xml, size_of
from repro.xmldom.parser import parse_document


class TestGenerator:
    def test_deterministic(self):
        assert generate_xml(scale=1) == generate_xml(scale=1)

    def test_seed_changes_content(self):
        assert generate_xml(scale=1, seed=1) != generate_xml(scale=1, seed=2)

    def test_size_grows_with_scale(self):
        small = size_of(generate_document(scale=1))
        large = size_of(generate_document(scale=4))
        assert large > 3 * small

    def test_output_is_well_formed(self):
        text = generate_xml(scale=1)
        doc = parse_document(text)
        assert doc.root.label == "site"

    def test_vocabulary_present(self):
        doc = generate_document(scale=1)
        for label in ("person", "open_auction", "bidder", "increase", "item",
                      "namerica", "name", "description", "homepage", "profile"):
            assert doc.nodes_with_label(label), "missing %s" % label

    def test_q3_and_q4_selectivities_nonempty(self):
        doc = generate_document(scale=1)
        increases = [n for n in doc.nodes_with_label("increase") if n.val == "4.50"]
        assert increases
        refs = [n for n in doc.nodes_with_label("@person") if n.val == "person12"]
        assert refs


class TestViews:
    @pytest.mark.parametrize("name", sorted(VIEW_TEXTS))
    def test_views_parse_and_are_nonempty(self, name):
        from repro.pattern.evaluate import evaluate_view

        doc = generate_document(scale=1)
        pattern = view_pattern(name)
        pattern.validate_for_maintenance()
        assert evaluate_view(pattern, doc), "view %s is empty" % name

    def test_view_definition_cached(self):
        assert view_definition("Q1") is view_definition("Q1")

    def test_view_pattern_fresh(self):
        assert view_pattern("Q1") is not view_pattern("Q1")

    def test_unknown_view_rejected(self):
        with pytest.raises(KeyError):
            view_definition("Q99")


class TestUpdates:
    @pytest.mark.parametrize("name", sorted(UPDATE_TEXTS))
    def test_updates_parse_both_ways(self, name):
        ins = insert_update(name)
        assert isinstance(ins, InsertUpdate)
        dele = delete_variant(name)
        assert isinstance(dele, DeleteUpdate)

    def test_classes_partition_names(self):
        classified = [name for names in UPDATE_CLASSES.values() for name in names]
        assert sorted(classified) == sorted(UPDATE_TEXTS)
        for suffix, names in UPDATE_CLASSES.items():
            for name in names:
                assert name.endswith(suffix)

    @pytest.mark.parametrize("view_name", sorted(VIEW_UPDATE_GROUPS))
    def test_groups_have_five_updates(self, view_name):
        assert len(VIEW_UPDATE_GROUPS[view_name]) == 5

    def test_insertions_have_targets_on_generated_doc(self):
        doc = generate_document(scale=1)
        for name in ("X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB", "X2_L"):
            update = insert_update(name)
            targets = update.target.evaluate(doc)
            assert targets, "update %s matches nothing" % name

    def test_five_node_insert_trees(self):
        # The name/increase snippets insert a root plus four children
        # (the Figure 28 setting).
        update = insert_update("X1_L")
        (tree,) = update.forest
        elements = [n for n in tree.self_and_descendants() if n.kind == "element"]
        assert len(elements) == 5
