"""Rendering view extents back to XML (the Figure 3 return clause)."""

import pytest

from repro.maintenance.engine import MaintenanceEngine
from repro.pattern.xquery import parse_view
from repro.updates.language import parse_update
from repro.views.render import render_tuple, render_view
from repro.views.view import MaterializedView
from repro.xmldom.parser import parse_document


@pytest.fixture
def setup():
    doc = parse_document(
        "<site><people>"
        "<person id='p0'><name>Ann &amp; co</name></person>"
        "<person id='p1'><name>Bob</name></person>"
        "</people></site>"
    )
    definition = parse_view(
        'let $c := doc("s") return for $p in $c/site/people/person, $n in $p/name '
        "return <res><who>{id($p)}</who><name>{string($n)}</name>"
        "<full>{$n}</full></res>"
    )
    view = MaterializedView.materialize(definition.pattern, doc)
    return doc, definition, view


class TestRenderTuple:
    def test_wrappers_and_kinds(self, setup):
        _doc, definition, view = setup
        first = view.rows()[0]
        rendered = render_tuple(definition, first)
        assert rendered.startswith("<res><who>site1.people1.person1</who>")
        assert "<name>Ann &amp; co</name>" in rendered
        assert "<full><name>Ann &amp; co</name></full>" in rendered
        assert rendered.endswith("</res>")

    def test_val_is_escaped_cont_is_markup(self, setup):
        _doc, definition, view = setup
        rendered = render_tuple(definition, view.rows()[0])
        # val: escaped text; cont: literal subtree markup
        assert rendered.count("&amp;") == 2


class TestRenderView:
    def test_whole_extent(self, setup):
        _doc, definition, view = setup
        xml = render_view(definition, view)
        assert xml.startswith("<results>") and xml.endswith("</results>")
        assert xml.count("<res>") == 2

    def test_result_is_well_formed(self, setup):
        _doc, definition, view = setup
        reparsed = parse_document(render_view(definition, view))
        assert len(list(reparsed.root.child_elements())) == 2

    def test_duplicate_expansion(self):
        doc = parse_document("<site><a><b/><b/></a></site>")
        definition = parse_view(
            'for $a in doc("d")/site/a, $b in $a/b '
            "return <r><who>{id($a)}</who></r>"
        )
        view = MaterializedView.materialize(definition.pattern, doc)
        assert render_view(definition, view).count("<r>") == 2
        assert render_view(definition, view, expand_duplicates=False).count("<r>") == 1

    def test_render_follows_maintenance(self, setup):
        doc, definition, view = setup
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(definition, "v")
        engine.apply_update(parse_update("delete //person[name = 'Bob']"))
        xml = render_view(definition, registered.view)
        assert "Bob" not in xml and "Ann" in xml
