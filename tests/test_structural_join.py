"""Physical operators: structural joins, PathFilter, PathNavigate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.relation import Relation
from repro.algebra.structural import (
    path_filter,
    path_navigate,
    stack_tree_pairs,
    structural_join,
    structural_semijoin,
)
from repro.xmldom.parser import parse_document


@pytest.fixture
def doc():
    return parse_document(
        "<a><c><b>1</b><b>2</b></c><f><c><b>3</b></c><b>4</b></f></a>"
    )


def rel(doc, label):
    return Relation.single_column(label, doc.nodes_with_label(label))


class TestStructuralJoin:
    def test_ancestor_join(self, doc):
        out = structural_join(rel(doc, "c"), rel(doc, "b"), "c", "b", "ancestor")
        pairs = {(str(l.id), str(r.id)) for l, r in out.rows}
        assert pairs == {
            ("a1.c1", "a1.c1.b1"),
            ("a1.c1", "a1.c1.b2"),
            ("a1.f2.c1", "a1.f2.c1.b1"),
        }

    def test_parent_join_excludes_deeper(self, doc):
        out = structural_join(rel(doc, "a"), rel(doc, "b"), "a", "b", "parent")
        assert len(out) == 0
        out = structural_join(rel(doc, "f"), rel(doc, "b"), "f", "b", "parent")
        assert [(str(l.id), str(r.id)) for l, r in out.rows] == [("a1.f2", "a1.f2.b2")]

    def test_output_schema_concatenated(self, doc):
        out = structural_join(rel(doc, "a"), rel(doc, "c"), "a", "c", "ancestor")
        assert out.schema == ("a", "c")

    def test_bad_axis_rejected(self, doc):
        with pytest.raises(ValueError):
            structural_join(rel(doc, "a"), rel(doc, "b"), "a", "b", "cousin")

    def test_semijoin(self, doc):
        out = structural_semijoin(rel(doc, "c"), rel(doc, "b"), "c", "b", "ancestor")
        assert len(out) == 3
        out = structural_semijoin(rel(doc, "f"), rel(doc, "b"), "f", "b", "parent")
        assert len(out) == 1


class TestStackTreeReference:
    def test_matches_prefix_join(self, doc):
        ancestors = doc.nodes_with_label("c")
        descendants = doc.nodes_with_label("b")
        merge = {(a.id, d.id) for a, d in stack_tree_pairs(ancestors, descendants)}
        prefix = structural_join(
            Relation.single_column("x", ancestors),
            Relation.single_column("y", descendants),
            "x",
            "y",
            "ancestor",
        )
        assert merge == {(l.id, r.id) for l, r in prefix.rows}

    def test_skipped_ancestor_still_matches_later_descendant(self):
        # Regression: an ancestor whose subtree starts after the first
        # descendant must still be matched against later descendants.
        doc = parse_document("<r><p><d>1</d></p><x><p><d>2</d></p></x></r>")
        ancestors = doc.nodes_with_label("x")
        descendants = doc.nodes_with_label("d")
        pairs = stack_tree_pairs(ancestors, descendants)
        assert len(pairs) == 1

    @settings(max_examples=50)
    @given(st.integers(0, 2**32 - 1))
    def test_equivalence_on_random_trees(self, seed):
        rng = random.Random(seed)
        labels = ["p", "q"]

        def build(depth):
            label = rng.choice(labels)
            inner = ""
            if depth < 3:
                inner = "".join(build(depth + 1) for _ in range(rng.randint(0, 3)))
            return "<%s>%s</%s>" % (label, inner, label)

        doc = parse_document("<root>%s</root>" % build(0))
        ancestors = doc.nodes_with_label("p")
        descendants = doc.nodes_with_label("q")
        merge = {(a.id, d.id) for a, d in stack_tree_pairs(ancestors, descendants)}
        expected = {
            (a.id, d.id)
            for a in ancestors
            for d in descendants
            if a.id.is_ancestor_of(d.id)
        }
        assert merge == expected


class TestPathOperators:
    def test_path_navigate(self, doc):
        bs = [n.id for n in doc.nodes_with_label("b")]
        parents = path_navigate(bs)
        assert {str(p) for p in parents} == {"a1.c1", "a1.f2.c1", "a1.f2"}

    def test_path_navigate_drops_root(self, doc):
        assert path_navigate([doc.root.id]) == []

    def test_path_filter_by_ancestor_label(self, doc):
        bs = [n.id for n in doc.nodes_with_label("b")]
        under_c = path_filter(bs, "c")
        assert len(under_c) == 3
        under_f = path_filter(bs, "f")
        assert len(under_f) == 2

    def test_path_filter_include_self(self, doc):
        cs = [n.id for n in doc.nodes_with_label("c")]
        assert len(path_filter(cs, "c")) == 0
        assert len(path_filter(cs, "c", include_self=True)) == 2

    def test_path_filter_wildcard(self, doc):
        bs = [n.id for n in doc.nodes_with_label("b")]
        assert path_filter(bs, "*") == bs
