"""DTD reasoning: content models, Δ-implications, violation detection."""

import pytest

from repro.schema.constraints import (
    DeltaImplication,
    check_delta_implications,
    check_insert_against_dtd,
    derive_delta_implications,
    validate_document,
)
from repro.schema.dtd import (
    DTD,
    DTDSyntaxError,
    any_model,
    choice,
    empty_model,
    name,
    opt,
    parse_dtd,
    plus,
    seq,
    star,
)
from repro.updates.language import InsertUpdate
from repro.updates.pul import compute_pul
from repro.xmldom.parser import parse_document, parse_fragment


def figure5_d1():
    """DTD d1: d1 → AS, AS → a+, a → BS, BS → b+, b → c, c → ε."""
    return DTD(
        {
            "d1": name("AS"),
            "AS": plus(name("a")),
            "a": name("BS"),
            "BS": plus(name("b")),
            "b": name("c"),
            "c": empty_model(),
        },
        root="d1",
    )


def figure5_d2():
    """DTD d2: d2 → (a,b,c)+, with optional/recursive a → BS, BS → x|ε."""
    return DTD(
        {
            "d2": plus(seq(name("a"), name("b"), name("c"))),
            "a": name("BS"),
            "BS": choice(name("x"), empty_model()),
            "x": choice(name("x"), empty_model()),
            "b": empty_model(),
            "c": empty_model(),
        },
        root="d2",
    )


class TestContentModels:
    def test_seq_matching(self):
        dtd = DTD({"e": seq(name("a"), star(name("b")), opt(name("c")))})
        assert dtd.allows_children("e", ["a"])
        assert dtd.allows_children("e", ["a", "b", "b", "c"])
        assert not dtd.allows_children("e", ["b"])
        assert not dtd.allows_children("e", ["a", "c", "b"])

    def test_choice_matching(self):
        dtd = DTD({"e": choice(name("a"), seq(name("b"), name("c")))})
        assert dtd.allows_children("e", ["a"])
        assert dtd.allows_children("e", ["b", "c"])
        assert not dtd.allows_children("e", ["a", "b"])

    def test_plus_requires_one(self):
        dtd = DTD({"e": plus(name("a"))})
        assert not dtd.allows_children("e", [])
        assert dtd.allows_children("e", ["a", "a", "a"])

    def test_any_and_undeclared(self):
        dtd = DTD({"e": any_model()})
        assert dtd.allows_children("e", ["x", "y"])
        assert dtd.allows_children("undeclared", ["whatever"])

    def test_figure5_d2_group_repetition(self):
        dtd = figure5_d2()
        assert dtd.allows_children("d2", ["a", "b", "c"])
        assert dtd.allows_children("d2", ["a", "b", "c", "a", "b", "c"])
        assert not dtd.allows_children("d2", ["a", "b"])
        assert not dtd.allows_children("d2", ["a", "c", "b"])


class TestRequiredDescendants:
    def test_figure5_d1_chain(self):
        dtd = figure5_d1()
        assert "c" in dtd.required_descendants("b")
        assert {"BS", "b", "c"} <= set(dtd.required_descendants("a"))

    def test_optional_children_not_required(self):
        dtd = figure5_d2()
        assert "x" not in dtd.required_descendants("a")

    def test_implications_include_example_3_9(self):
        implications = derive_delta_implications(figure5_d1())
        assert DeltaImplication("b", "c") in implications


class TestViolationDetection:
    def test_example_3_9_rejected(self):
        # u5 inserts <a><b></b></a>: a b without a c violates d1.
        dtd = figure5_d1()
        forest = parse_fragment("<a><BS><b></b></BS></a>")
        problems = check_delta_implications(dtd, forest)
        assert any("required c" in message for message in problems)

    def test_valid_insert_passes_implications(self):
        dtd = figure5_d1()
        forest = parse_fragment("<b><c/></b>")
        assert check_delta_implications(dtd, forest) == []

    def test_example_3_10_sibling_constraint(self):
        # Inserting a lone <a/> under d2 breaks (a,b,c)+ -- caught by
        # full target revalidation.
        dtd = figure5_d2()
        doc = parse_document("<d2><a><BS/></a><b/><c/></d2>")
        pul = compute_pul(doc, InsertUpdate("/d2", "<a><BS/></a>"))
        problems = check_insert_against_dtd(dtd, pul)
        assert problems
        pul_ok = compute_pul(doc, InsertUpdate("/d2", "<a><BS/></a><b/><c/>"))
        assert check_insert_against_dtd(dtd, pul_ok) == []

    def test_inserted_tree_internally_invalid(self):
        dtd = figure5_d1()
        doc = parse_document("<d1><AS><a><BS><b><c/></b></BS></a></AS></d1>")
        pul = compute_pul(doc, InsertUpdate("//BS", "<b><d/></b>"))
        problems = check_insert_against_dtd(dtd, pul)
        assert any("content model" in message for message in problems)

    def test_validate_document(self):
        dtd = figure5_d1()
        good = parse_document("<d1><AS><a><BS><b><c/></b></BS></a></AS></d1>")
        assert validate_document(dtd, good) == []
        bad = parse_document("<d1><AS><a><BS><b/></BS></a></AS></d1>")
        assert validate_document(dtd, bad)


class TestDTDParser:
    def test_parse_declarations(self):
        dtd = parse_dtd(
            "<!ELEMENT site (regions, people)>"
            "<!ELEMENT regions (item*)>"
            "<!ELEMENT people (person+)>"
            "<!ELEMENT person (name, phone?)>"
            "<!ELEMENT name (#PCDATA)>"
        )
        assert dtd.allows_children("site", ["regions", "people"])
        assert dtd.allows_children("person", ["name"])
        assert not dtd.allows_children("person", ["phone"])
        assert "name" in dtd.required_descendants("person")

    def test_parse_choice_groups(self):
        dtd = parse_dtd("<!ELEMENT e ((a | b), c)>")
        assert dtd.allows_children("e", ["a", "c"])
        assert dtd.allows_children("e", ["b", "c"])
        assert not dtd.allows_children("e", ["a", "b", "c"])

    def test_mixed_connectives_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT e (a, b | c)>")

    def test_empty_input_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("no declarations here")
