"""Unit tests for the durable storage layer (repro.storage).

Four areas: the memcomparable key encoding (its order must coincide
with ``row_sort_key`` on every comparable pair, DeweyID padded
semantics included), the WAL frame format under torn writes (the
satellite contract: recovery drops exactly the uncommitted suffix,
never a committed batch), the fork/pickle refusals, and the
reopen-level RecoveryReport surface.
"""

import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import chain_pattern
from repro.storage.keyenc import encode_key
from repro.storage.recovery import (
    RecoveryError,
    RecoveryReport,
    _truncate_uncommitted,
    reopen,
)
from repro.storage.sqlite import SqliteExtentBackend, wal_path
from repro.storage.wal import COMMIT, DATA, HEADER_SIZE, BatchWal
from repro.views.view import row_sort_key
from repro.xmldom.dewey import DeweyID


# -- key encoding ------------------------------------------------------------


def dewey(*steps):
    return DeweyID([("n%d" % i, ordinal) for i, ordinal in enumerate(steps)])


class TestKeyEncoding:
    def test_int_order(self):
        values = [-(1 << 40), -257, -256, -2, -1, 0, 1, 2, 255, 256, 1 << 40]
        blobs = [encode_key(v) for v in values]
        assert blobs == sorted(blobs)

    def test_str_order_with_embedded_nul(self):
        values = ["", "\x00", "\x00a", "a", "a\x00", "a\x00b", "ab", "b"]
        blobs = [encode_key(v) for v in values]
        assert blobs == sorted(blobs)

    def test_tuple_prefix_sorts_first(self):
        assert encode_key(("a",)) < encode_key(("a", "b"))
        assert encode_key((1,)) < encode_key((1, 0))

    def test_dewey_padded_semantics(self):
        # (1,) == (1, 0) padded; (1, -1) sorts before both; (1, 1) after.
        base = dewey((1,))
        padded = dewey((1, 0))
        before = dewey((1, -1))
        after = dewey((1, 1))
        assert encode_key(base) == encode_key(padded)
        assert encode_key(before) < encode_key(base) < encode_key(after)
        # Earlier positions dominate: (1, -1, 5) < (1,) < (1, 0, 0, 2).
        assert encode_key(dewey((1, -1, 5))) < encode_key(base)
        assert encode_key(base) < encode_key(dewey((1, 0, 0, 2)))

    def test_dewey_step_prefix_sorts_first(self):
        shorter = dewey((1,))
        longer = dewey((1,), (1,))
        assert encode_key(shorter) < encode_key(longer)

    def test_distinct_types_get_a_total_order(self):
        # Incomparable under the in-memory order (it would raise); the
        # encoding's type tags pick a fixed order so the durable store
        # can hold what the in-memory store would reject ordering on.
        cells = [None, -5, "a", b"a", dewey((1,))]
        blobs = [encode_key((cell,)) for cell in cells]
        assert blobs == sorted(blobs)
        assert len(set(blobs)) == len(blobs)

    def test_unsupported_cell_raises(self):
        with pytest.raises(TypeError):
            encode_key((object(),))


_ordinals = st.lists(st.integers(-4, 4), min_size=1, max_size=3).map(tuple)
_deweys = st.lists(
    st.tuples(st.sampled_from("abc"), _ordinals), min_size=1, max_size=3
).map(DeweyID)
#: per-column cell strategies; one kind per column keeps every row pair
#: comparable under row_sort_key (the in-memory store's precondition).
_cell_strategies = {
    "int": st.integers(-300, 300),
    "str": st.text(alphabet="ab\x00\xff", max_size=4),
    "bytes": st.binary(max_size=4),
    "dewey": _deweys,
}


@st.composite
def _row_lists(draw):
    shape = draw(
        st.lists(st.sampled_from(sorted(_cell_strategies)), min_size=1, max_size=3)
    )
    row = st.tuples(*[_cell_strategies[kind] for kind in shape])
    return draw(st.lists(row, min_size=2, max_size=12))


@given(_row_lists())
@settings(max_examples=120, deadline=None)
def test_blob_order_matches_row_sort_key(rows):
    """The interchangeability contract: memcmp on blobs == row_sort_key.

    The DeweyID strategy deliberately emits negative ordinal components
    past index 0, so both the plain-tuple and the padded-semantics
    sort-key paths are exercised.
    """
    by_key = sorted(rows, key=row_sort_key)
    by_blob = sorted(rows, key=encode_key)
    # Ties (e.g. ordinals differing only in trailing zeros) make the
    # permutation ambiguous; the key sequences must still agree.
    assert [row_sort_key(r) for r in by_blob] == [row_sort_key(r) for r in by_key]
    for row in rows:
        assert isinstance(encode_key(row), bytes)


# -- WAL frames and torn tails ----------------------------------------------


def _build_wal(path, batches=3, uncommitted_tail=True):
    wal = BatchWal(path)
    for batch_id in range(1, batches + 1):
        wal.append_batch(batch_id, ["stmt-%d" % batch_id])
        wal.append_commit(batch_id)
    if uncommitted_tail:
        wal.append_batch(batches + 1, ["stmt-tail"])
    wal.close()
    with open(path, "rb") as handle:
        return handle.read()


class TestWalTornTail:
    def test_clean_scan(self, tmp_path):
        path = str(tmp_path / "wal")
        _build_wal(path, uncommitted_tail=False)
        records, torn = BatchWal.scan(path)
        assert torn is None
        assert [r.kind for r in records] == [DATA, COMMIT] * 3
        batches, last = BatchWal.committed_statements(records)
        assert last == 3
        assert batches[2] == ["stmt-2"]

    def test_truncation_at_every_byte_of_final_record(self, tmp_path):
        path = str(tmp_path / "wal")
        data = _build_wal(path)
        records, _ = BatchWal.scan(path)
        tail_start = records[-1].offset  # the uncommitted DATA record
        for cut in range(tail_start, len(data)):
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            records_now, torn = BatchWal.scan(path)
            if cut > tail_start:
                assert torn is not None and torn.offset == tail_start
            batches, last = BatchWal.committed_statements(records_now)
            assert last == 3  # committed batches never lost
            kept, removed = _truncate_uncommitted(path, records_now, last)
            assert os.path.getsize(path) == tail_start
            assert [r.batch_id for r in kept if r.kind == COMMIT] == [1, 2, 3]

    def test_bitflip_at_every_byte_of_final_record(self, tmp_path):
        path = str(tmp_path / "wal")
        data = _build_wal(path)
        records, _ = BatchWal.scan(path)
        tail_start = records[-1].offset
        for offset in range(tail_start, len(data)):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0x40
            with open(path, "wb") as handle:
                handle.write(bytes(corrupted))
            records_now, torn = BatchWal.scan(path)
            assert torn is not None and torn.offset == tail_start
            batches, last = BatchWal.committed_statements(records_now)
            assert last == 3
            _truncate_uncommitted(path, records_now, last)
            assert os.path.getsize(path) == tail_start

    def test_commit_gap_is_an_error(self, tmp_path):
        path = str(tmp_path / "wal")
        wal = BatchWal(path)
        wal.append_batch(1, ["a"])
        wal.append_commit(1)
        wal.append_batch(3, ["c"])  # id 2 never logged
        wal.append_commit(3)
        wal.close()
        records, _ = BatchWal.scan(path)
        with pytest.raises(ValueError, match="gap"):
            BatchWal.committed_statements(records)

    def test_commit_without_data_is_uncommitted(self, tmp_path):
        path = str(tmp_path / "wal")
        wal = BatchWal(path)
        wal.append_commit(1)  # marker with no payload record
        wal.close()
        records, torn = BatchWal.scan(path)
        assert torn is None
        batches, last = BatchWal.committed_statements(records)
        assert (batches, last) == ({}, 0)


# -- fork/pickle boundary ----------------------------------------------------


class TestBoundaryRefusals:
    def test_wal_refuses_pickle(self, tmp_path):
        wal = BatchWal(str(tmp_path / "wal"))
        with pytest.raises(TypeError, match="fork/pickle"):
            pickle.dumps(wal)
        wal.close()

    def test_backend_and_store_refuse_pickle(self, tmp_path):
        backend = SqliteExtentBackend(str(tmp_path / "db"))
        store = backend.store_for("v")
        with pytest.raises(TypeError, match="fork/pickle"):
            pickle.dumps(backend)
        with pytest.raises(TypeError, match="fork/pickle"):
            pickle.dumps(store)
        backend.close()

    def test_forked_child_does_not_journal(self, tmp_path):
        backend = SqliteExtentBackend(str(tmp_path / "db"))
        store = backend.store_for("v")
        store.put(("a",), 1)
        assert store.pending_ops == 1
        real_pid = backend._pid
        backend._pid = real_pid + 1  # what a forked child observes
        assert not backend.writable
        store.put(("b",), 2)  # mirror updated, nothing journaled
        assert store.get(("b",)) == 2
        assert store.pending_ops == 1
        backend.sync({})  # no-op in a child
        backend.close()  # likewise guarded: inherited handles untouched
        backend._pid = real_pid
        backend.close()


# -- sqlite store conformance odds and ends ---------------------------------


class TestSqliteStore:
    def test_flush_and_stored_extent_roundtrip(self, tmp_path):
        path = str(tmp_path / "db")
        backend = SqliteExtentBackend(path)
        store = backend.store_for("v")
        store.put(("b", 2), 20)
        store.put(("a", 1), 10)
        store.delete(("b", 2))
        backend.sync({})
        backend.close()
        fresh = SqliteExtentBackend(path)
        assert fresh.stored_extent("v") == [(("a", 1), 10)]
        fresh.close()

    def test_reload_clears_stale_rows(self, tmp_path):
        path = str(tmp_path / "db")
        backend = SqliteExtentBackend(path)
        store = backend.store_for("v")
        store.put(("stale",), 1)
        backend.sync({})
        store.load_sorted([(("fresh",), 2)])
        backend.sync({})
        backend.close()
        fresh = SqliteExtentBackend(path)
        assert fresh.stored_extent("v") == [(("fresh",), 2)]
        fresh.close()

    def test_adopt_does_not_rewrite(self, tmp_path):
        backend = SqliteExtentBackend(str(tmp_path / "db"))
        store = backend.store_for("v")
        store.adopt([(("a",), 1), (("b",), 2)])
        assert store.pending_ops == 0
        assert store.keys() == [("a",), ("b",)]
        backend.close()

    def test_version_accounting(self, tmp_path):
        backend = SqliteExtentBackend(str(tmp_path / "db"))
        assert (backend.version, backend.lattice_version) == (0, 0)
        batch_id = backend.begin_batch(["s1"])
        assert batch_id == 1
        backend.commit_batch(batch_id, {})
        assert (backend.version, backend.lattice_version) == (1, 1)
        batch_id = backend.begin_batch(["s2"])
        backend.commit_batch(batch_id, {}, include_lattices=False)
        assert (backend.version, backend.lattice_version) == (2, 1)
        backend.close()


# -- reopen-level recovery surface ------------------------------------------


class TestReopenSurface:
    def test_reopen_missing_views_raises_keyerror(self, tmp_path, fig2_document):
        path = str(tmp_path / "db")
        backend = SqliteExtentBackend(path)
        backend.close()
        with pytest.raises(KeyError, match="no durable extent"):
            reopen(path, fig2_document, {"v": chain_pattern("a", "b")})

    def test_version_ahead_of_wal_is_an_error(self, tmp_path, fig2_document):
        path = str(tmp_path / "db")
        backend = SqliteExtentBackend(path)
        backend.commit_batch(backend.begin_batch(["s"]), {})
        backend.close()
        # Lose the whole WAL: the database now claims a history the log
        # cannot prove.
        os.truncate(wal_path(path), 0)
        with pytest.raises(RecoveryError, match="ahead of the WAL"):
            reopen(path, fig2_document, {})

    def test_report_repr_is_structured(self):
        report = RecoveryReport(path="x", last_committed_batch=3,
                                durable_version=2, replayed_batches=1)
        assert "C=3" in repr(report) and "replayed=1" in repr(report)
