"""Pattern evaluation: algebraic (structural joins) vs embeddings.

The two evaluators are implemented independently; their agreement on
random documents is the core semantic invariant of the whole system.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.pattern.embedding import evaluate_embeddings
from repro.pattern.evaluate import (
    evaluate_bindings,
    evaluate_view,
    sources_from_document,
    view_columns,
)
from repro.pattern.tree_pattern import Pattern, PatternNode
from repro.xmldom.parser import parse_document
from tests.conftest import branch_pattern, chain_pattern, v2_pattern


class TestBindings:
    def test_simple_chain(self, fig2_document):
        pattern = chain_pattern("a", "b")
        bindings = evaluate_bindings(pattern, fig2_document)
        assert len(bindings) == 2
        assert bindings.schema == ("a#1", "b#1")

    def test_child_axis_root_anchors_at_document_root(self, fig2_document):
        pattern = chain_pattern("c", "b")
        pattern.root.axis = "child"
        assert len(evaluate_bindings(pattern, fig2_document)) == 0

    def test_branching(self, fig12_document):
        bindings = evaluate_bindings(v2_pattern(), fig12_document)
        # The 8 tuples listed in Figure 12.
        assert len(bindings) == 8

    def test_value_predicate_filters_sources(self, fig2_document):
        pattern = chain_pattern("a", "b")
        pattern.node("b#1").value_pred = "hi"
        assert len(evaluate_bindings(pattern, fig2_document)) == 1

    def test_explicit_sources(self, fig2_document):
        pattern = chain_pattern("a", "b")
        sources = sources_from_document(pattern, fig2_document)
        sources["b#1"] = sources["b#1"][:1]
        assert len(evaluate_bindings(pattern, sources=sources)) == 1

    def test_output_sorted_by_binding_ids(self, fig12_document):
        bindings = evaluate_bindings(v2_pattern(), fig12_document)
        keys = [tuple(c.id for c in row) for row in bindings.rows]
        assert keys == sorted(keys)

    def test_wildcard_matches_elements_only(self, fig2_document):
        star = PatternNode("*", axis="desc", store_id=True)
        pattern = Pattern(star)
        bindings = evaluate_bindings(pattern, fig2_document)
        assert len(bindings) == 5  # a, c, b, f, b -- no text nodes


class TestViewSemantics:
    def test_view_columns(self):
        pattern = chain_pattern("a", "b")
        pattern.node("b#1").store_val = True
        assert view_columns(pattern) == ["a#1.ID", "b#1.ID", "b#1.val"]

    def test_derivation_counts(self, fig2_document):
        # //a{ID}[//b]: a single tuple with two derivations.
        a = PatternNode("a", axis="desc", store_id=True)
        a.add_child(PatternNode("b", axis="desc"))
        content = evaluate_view(Pattern(a), fig2_document)
        assert len(content) == 1
        (_row, count), = content
        assert count == 2

    def test_val_and_cont_extraction(self, fig2_document):
        pattern = chain_pattern("c", "b", annotate="ID")
        b = pattern.node("b#1")
        b.store_val = True
        b.store_cont = True
        ((row, _count),) = evaluate_view(pattern, fig2_document)
        assert row[2] == "hi"
        assert row[3] == "<b>hi</b>"


def _random_document(rng):
    def build(depth):
        label = rng.choice("abc")
        inner = ""
        if depth < 3:
            inner = "".join(build(depth + 1) for _ in range(rng.randint(0, 3)))
        if not inner and rng.random() < 0.4:
            inner = rng.choice(("x", "y"))
        return "<%s>%s</%s>" % (label, inner, label)

    return parse_document("<r>%s%s</r>" % (build(0), build(0)))


def _random_pattern(rng):
    root = PatternNode(rng.choice("rabc"), axis="desc", store_id=True)
    nodes = [root]
    for _ in range(rng.randint(1, 3)):
        parent = rng.choice(nodes)
        child = PatternNode(
            rng.choice("abc"),
            axis=rng.choice(("child", "desc")),
            store_id=True,
        )
        parent.add_child(child)
        nodes.append(child)
    if rng.random() < 0.3:
        rng.choice(nodes[1:]).value_pred = rng.choice(("x", "y"))
    return Pattern(root)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_algebraic_equals_embedding_semantics(seed):
    rng = random.Random(seed)
    doc = _random_document(rng)
    pattern = _random_pattern(rng)
    algebraic = evaluate_bindings(pattern, doc)
    embeddings = evaluate_embeddings(pattern, doc)
    key = lambda rel: sorted(tuple(c.id for c in row) for row in rel.rows)
    assert key(algebraic) == key(embeddings)
