"""Classic setup shim.

The execution environment is offline and lacks the ``wheel`` package,
so PEP-517 editable installs (``pip install -e .``) cannot build.  This
shim lets ``python setup.py develop`` install the package the legacy
way; metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro-lint=repro.analysis.cli:main",
        ],
    },
)
