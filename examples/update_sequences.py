"""Update sequences: PUL reduction before propagation (Section 5).

Run with::

    python examples/update_sequences.py

A burst of overlapping statements is compiled to atomic operations,
reduced with the rules O1/O3/I5, and propagated; the example shows the
operation counts before/after reduction, conflict detection between
parallel PULs, and that the optimized path lands on the same view
extent as the plain one.
"""

from repro.maintenance.engine import MaintenanceEngine
from repro.optimizer.conflicts import deletes_win, detect_conflicts, integrate_puls
from repro.optimizer.ops import pul_to_operations
from repro.optimizer.rules import reduce_operations
from repro.updates.language import DeleteUpdate, InsertUpdate
from repro.updates.pul import compute_pul
from repro.workloads.queries import view_pattern
from repro.workloads.xmark import generate_document

BURST = [
    InsertUpdate("/site/people/person", "<name>Tmp<name>x</name></name>", name="ins_all"),
    InsertUpdate("/site/people/person", "<name>Tmp<name>y</name></name>", name="ins_again"),
    DeleteUpdate("/site/people/person[profile]", name="del_profiled"),
]


def main():
    document = generate_document(scale=1)
    operations = []
    for statement in BURST:
        operations.extend(pul_to_operations(compute_pul(document, statement)))
    reduced = reduce_operations(operations)
    print("atomic operations before reduction: %d" % len(operations))
    print("atomic operations after O1/O3/I5:   %d" % len(reduced))

    # Conflicts between two PULs meant to run in parallel.
    pul1 = pul_to_operations(compute_pul(document, BURST[2]))
    pul2 = pul_to_operations(compute_pul(document, BURST[0]))
    conflicts = detect_conflicts(pul1, pul2)
    print("\nparallel-PUL conflicts (delete-profiled vs insert-names): %d" % len(conflicts))
    kinds = sorted({conflict.kind for conflict in conflicts})
    print("  kinds:", ", ".join(kinds))
    integrated, _ = integrate_puls(pul1, pul2, resolution=deletes_win)
    print("  integrated under the deletes-win policy: %d operations" % len(integrated))

    # End-to-end: optimized propagation equals plain propagation.
    def run(optimize):
        doc = generate_document(scale=1)
        engine = MaintenanceEngine(doc)
        registered = engine.register_view(view_pattern("Q1"), "Q1")
        engine.apply_sequence(BURST, optimize=optimize)
        assert registered.view.equals_fresh_evaluation(doc)
        return registered.view.content()

    plain = run(False)
    optimized = run(True)
    assert plain == optimized
    print("\noptimized propagation matches plain propagation (%d view tuples)"
          % len(plain))


if __name__ == "__main__":
    main()
