"""Quickstart: define a view, update the document, stay consistent.

Run with::

    python examples/quickstart.py

Walks through the full lifecycle on a toy document: parse XML, define a
materialized view in the paper's conjunctive XQuery dialect, register it
with the maintenance engine, apply insert and delete statements, and
watch the view follow along incrementally (never recomputed).
"""

from repro.maintenance.engine import MaintenanceEngine
from repro.updates.language import parse_update
from repro.xmldom.parser import parse_document

DOCUMENT = """
<library>
  <shelf area="fiction">
    <book year="1979"><title>Solaris</title><copies>2</copies></book>
    <book year="1965"><title>Dune</title><copies>1</copies></book>
  </shelf>
  <shelf area="science">
    <book year="1988"><title>Chaos</title><copies>3</copies></book>
  </shelf>
</library>
"""

VIEW = """
let $lib := doc("library.xml") return
for $s in $lib/library/shelf, $b in $s/book, $t in $b/title
return <res><shelf>{id($s)}</shelf><title>{string($t)}</title></res>
"""


def show(view):
    for row, count in view.content():
        print("   %-40s x%d" % (row, count))


def main():
    document = parse_document(DOCUMENT, uri="library.xml")
    engine = MaintenanceEngine(document)
    registered = engine.register_view(VIEW, name="titles")
    print("view pattern:", registered.pattern.to_string())
    print("initial extent (%d tuples):" % len(registered.view))
    show(registered.view)

    insert = parse_update(
        'for $s in /library/shelf insert '
        "<book><title>The Dispossessed</title><copies>1</copies></book>"
    )
    report = engine.apply_update(insert)
    print("\nafter inserting a book on every shelf "
          "(+%d derivations, %.2f ms):"
          % (report.report_for("titles").derivations_added,
             report.total_maintenance_seconds() * 1000))
    show(registered.view)

    delete = parse_update("delete /library/shelf/book[title = 'Dune']")
    report = engine.apply_update(delete)
    print("\nafter deleting Dune (-%d tuples, %.2f ms):"
          % (report.report_for("titles").tuples_removed,
             report.total_maintenance_seconds() * 1000))
    show(registered.view)

    assert registered.view.equals_fresh_evaluation(document)
    print("\nverified: incremental extent == fresh evaluation")


if __name__ == "__main__":
    main()
