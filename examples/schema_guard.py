"""Schema guard: reject schema-violating updates from Δ+ tables.

Run with::

    python examples/schema_guard.py

Re-enacts Section 3.3: the DTDs of Figure 5 induce constraints over the
Δ+ tables ("inserting a b requires a c"), checked *before* the document
is touched; a full content-model revalidation catches the sibling
constraints of Example 3.10.
"""

from repro.schema.constraints import (
    check_delta_implications,
    check_insert_against_dtd,
    derive_delta_implications,
)
from repro.schema.dtd import DTD, choice, empty_model, name, plus, seq
from repro.updates.language import InsertUpdate
from repro.updates.pul import compute_pul
from repro.xmldom.parser import parse_document, parse_fragment

# Figure 5(a): d1 -> AS, AS -> a+, a -> BS, BS -> b+, b -> c, c -> EMPTY
D1 = DTD(
    {
        "d1": name("AS"),
        "AS": plus(name("a")),
        "a": name("BS"),
        "BS": plus(name("b")),
        "b": name("c"),
        "c": empty_model(),
    },
    root="d1",
)

# Figure 5(b): d2 -> (a, b, c)+ with optional/recursive content under a.
D2 = DTD(
    {
        "d2": plus(seq(name("a"), name("b"), name("c"))),
        "a": name("BS"),
        "BS": choice(name("x"), empty_model()),
        "x": choice(name("x"), empty_model()),
        "b": empty_model(),
        "c": empty_model(),
    },
    root="d2",
)


def main():
    print("Δ-implications derived from DTD d1:")
    for implication in derive_delta_implications(D1):
        print("  ", implication)

    # Example 3.9: u5 inserts <a><b/></a> -- a b without its required c.
    bad_forest = parse_fragment("<a><BS><b/></BS></a>")
    problems = check_delta_implications(D1, bad_forest)
    print("\nExample 3.9, inserting <a><BS><b/></BS></a> under d1:")
    for problem in problems:
        print("   REJECTED:", problem)
    assert problems

    good_forest = parse_fragment("<a><BS><b><c/></b></BS></a>")
    assert check_delta_implications(D1, good_forest) == []
    print("   (the c-carrying variant passes)")

    # Example 3.10: inserting a lone <a/> under d2 breaks (a, b, c)+.
    document = parse_document("<d2><a><BS/></a><b/><c/></d2>")
    lone = compute_pul(document, InsertUpdate("/d2", "<a><BS/></a>"))
    problems = check_insert_against_dtd(D2, lone)
    print("\nExample 3.10, inserting a lone <a> under d2:")
    for problem in problems:
        print("   REJECTED:", problem)
    assert problems

    triple = compute_pul(document, InsertUpdate("/d2", "<a><BS/></a><b/><c/>"))
    assert check_insert_against_dtd(D2, triple) == []
    print("   (inserting the full (a, b, c) group passes)")


if __name__ == "__main__":
    main()
