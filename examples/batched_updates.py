"""Batched + asynchronous maintenance on the auction-site workload.

Run with::

    python examples/batched_updates.py

The auction-site scenario again (XMark document, views Q1/Q3/Q6, a
stream of XPathMark-style updates) -- but instead of propagating one
statement at a time, writers hand statements to an
:class:`~repro.maintenance.queue.ApplyQueue` and continue immediately;
a background worker groups arrivals into
:class:`~repro.updates.language.UpdateBatch` units and runs **one**
maintenance round per group (one merged pending update list, one
label-bucketed Δ extraction, one extent snapshot, one store pass and
one lattice pass per view).  The demo then replays the same stream
statement-at-a-time and compares propagation time.
"""

import time

from repro.maintenance.engine import BatchEngine, MaintenanceEngine
from repro.workloads.queries import view_pattern
from repro.workloads.updates import statement_stream
from repro.workloads.xmark import generate_document, size_of

VIEWS = ("Q1", "Q3", "Q6")
STREAM_LENGTH = 48


def propagation_ms(reports):
    return sum(report.propagation_seconds() for report in reports) * 1000


def main():
    document = generate_document(scale=2)
    print("document: %d bytes, %d nodes" % (size_of(document), document.size_in_nodes()))
    stream = statement_stream(
        generate_document(scale=2), STREAM_LENGTH, seed=42, insert_ratio=0.8
    )
    print("stream: %d single-target statements (80%% inserts)\n" % len(stream))

    # -- async batched application -----------------------------------------
    engine = BatchEngine(document)
    registered = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
    for name, view in registered.items():
        print("  %-4s %-60s %4d tuples" % (name, view.pattern.to_string(), len(view.view)))

    started = time.perf_counter()
    with engine.queue(max_batch_size=16, flush_interval=0.002) as queue:
        tickets = [queue.apply_async(statement) for statement in stream]
        submit_ms = (time.perf_counter() - started) * 1000
        queue.flush()
        wall_ms = (time.perf_counter() - started) * 1000
        reports = []
        for ticket in tickets:
            report = ticket.result()
            if not reports or reports[-1] is not report:
                reports.append(report)
    print("\nasync queue: %d statements submitted in %.2fms (writers never block)"
          % (len(stream), submit_ms))
    print("             drained into %d batches, %.2fms wall, %.2fms propagation"
          % (len(reports), wall_ms, propagation_ms(reports)))
    for report in reports:
        print("             batch of %2d: +%d/-%d net nodes, %d cancelled%s"
              % (report.statements_applied, report.net_inserted, report.net_removed,
                 report.cancelled,
                 ", fallbacks %s" % sorted(report.fallbacks) if report.fallbacks else ""))
    for name, view in registered.items():
        assert view.view.equals_fresh_evaluation(document), name
    print("all views verified against fresh re-evaluation")

    # -- the same stream, statement at a time ------------------------------
    sequential_doc = generate_document(scale=2)
    sequential = MaintenanceEngine(sequential_doc)
    sequential_views = {
        name: sequential.register_view(view_pattern(name), name) for name in VIEWS
    }
    started = time.perf_counter()
    sequential_reports = [sequential.apply_update(statement) for statement in stream]
    sequential_wall_ms = (time.perf_counter() - started) * 1000
    for name, view in sequential_views.items():
        assert view.view.content() == registered[name].view.content(), name
    print("\nsequential replay: %.2fms wall, %.2fms propagation"
          % (sequential_wall_ms, propagation_ms(sequential_reports)))
    print("final extents byte-identical to the batched run")


if __name__ == "__main__":
    main()
