"""Auction-site scenario: many views, a stream of updates, breakdowns.

Run with::

    python examples/auction_site.py

Reproduces the paper's motivating setting: an XMark auction document
with several materialized views (Q1, Q3, Q6 of Appendix A.6) kept
consistent under a stream of XPathMark-style updates.  Prints the same
five-phase breakdown as Figures 18/19 and a comparison against full
recomputation for the last statement.
"""

from repro.baselines.recompute import full_recompute
from repro.maintenance.engine import PHASES, MaintenanceEngine
from repro.views.lattice import SnowcapLattice
from repro.workloads.queries import view_pattern
from repro.workloads.updates import delete_variant, insert_update
from repro.workloads.xmark import generate_document, size_of

VIEWS = ("Q1", "Q3", "Q6")
STREAM = [
    insert_update("X1_L"),     # new name children under every person
    insert_update("X3_A"),     # increases for private auctions with bidders
    delete_variant("B7_LB"),   # drop persons with an income profile
    insert_update("E6_L"),     # a new item inside every item
    delete_variant("A7_O"),    # drop persons with phone or homepage
]


def main():
    document = generate_document(scale=2)
    print("document: %d bytes, %d nodes" % (size_of(document), document.size_in_nodes()))
    engine = MaintenanceEngine(document)
    registered = {name: engine.register_view(view_pattern(name), name) for name in VIEWS}
    for name, view in registered.items():
        print("  %-4s %-60s %4d tuples" % (name, view.pattern.to_string(), len(view.view)))

    header = "%-8s %-6s" % ("update", "view")
    header += "".join(" %12s" % phase[:12] for phase in PHASES) + " %10s" % "total_ms"
    print("\n" + header)
    for statement in STREAM:
        report = engine.apply_update(statement)
        for name in VIEWS:
            phases = report.report_for(name).phases
            line = "%-8s %-6s" % (statement.name, name)
            for phase in PHASES:
                line += " %12.2f" % (phases.as_dict()[phase] * 1000)
            line += " %10.2f" % (phases.total() * 1000)
            print(line)
        for name, view in registered.items():
            assert view.view.equals_fresh_evaluation(document), name

    # How long would recomputing have taken instead?
    print("\nincremental vs full recomputation (document as of now):")
    for name, view in registered.items():
        lattice = SnowcapLattice(view.pattern)
        _fresh, seconds = full_recompute(view.pattern, document, lattice)
        print("  %-4s full recomputation: %8.2f ms" % (name, seconds * 1000))
    print("all views verified consistent after the stream")


if __name__ == "__main__":
    main()
